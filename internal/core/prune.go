package core

import (
	"fmt"
	"strconv"

	"nok/internal/pattern"
	"nok/internal/vstore"
)

// ProvablyEmpty reports whether the query can be proven to return no
// results from this store using statistics alone, without touching a data
// page. The scatter-gather executor (internal/shard) asks this per shard
// to skip provably-empty shards; the returned reason feeds EXPLAIN
// ANALYZE output so the pruning is visible.
//
// Two sound proofs are used:
//
//   - A pattern tree is conjunctive — every pattern node must match some
//     subject node for any result to exist — so a concrete tag test that
//     occurs zero times in the store (per the §6.2 tag statistics, which
//     are exact) proves emptiness.
//   - A count-min sketch never undercounts, so a fresh synopsis whose
//     estimate for an equality literal's hash is zero proves the value is
//     absent. This is only sound for literals that do not parse as
//     numbers: numeric equality compares numerically ("100" matches a
//     node value of "100.0"), defeating hash identity.
func (db *Snapshot) ProvablyEmpty(t *pattern.Tree) (bool, string) {
	empty := false
	reason := ""
	syn := db.syn.Load()
	freshSyn := db.SynopsisFresh()
	t.Walk(func(n *pattern.Node, _ int) {
		if empty || n.IsVirtualRoot() {
			return
		}
		if n.Test != "*" {
			sym, ok := db.Tags.Lookup(n.Test)
			if !ok || db.tagCount[sym] == 0 {
				empty = true
				reason = fmt.Sprintf("tag %q absent", n.Test)
				return
			}
		}
		if n.Cmp == pattern.CmpEq && freshSyn {
			if _, err := strconv.ParseFloat(n.Literal, 64); err != nil {
				if syn.ValueEstimate(vstore.Hash([]byte(n.Literal))) == 0 {
					empty = true
					reason = fmt.Sprintf("value %q absent", n.Literal)
				}
			}
		}
	})
	return empty, reason
}
