package core

import (
	"strings"
	"testing"

	"nok/internal/dewey"
	"nok/internal/domnav"
	"nok/internal/samples"
)

func mustID(t *testing.T, s string) dewey.ID {
	t.Helper()
	id, err := dewey.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestInsertFragmentEndToEnd(t *testing.T) {
	db := loadDB(t, samples.Bibliography, smallPages())
	frag := `<book year="2004"><title>Succinct Storage</title>` +
		`<author><last>Zhang</last><first>Ning</first></author>` +
		`<publisher>ICDE</publisher><price>10.00</price></book>`
	if err := db.InsertFragment(mustID(t, "0"), strings.NewReader(frag)); err != nil {
		t.Fatal(err)
	}
	// The new book is the fifth child of bib.
	got := queryIDs(t, db, `/bib/book`, nil)
	if len(got) != 5 || got[4] != "0.5" {
		t.Fatalf("books after insert: %v", got)
	}
	// Value constraints see the new content through the rebuilt indexes.
	got = queryIDs(t, db, `//book[author/last="Zhang"]`, nil)
	if len(got) != 1 || got[0] != "0.5" {
		t.Fatalf("Zhang query: %v", got)
	}
	got = queryIDs(t, db, `//book[price<20]/title`, nil)
	if len(got) != 1 {
		t.Fatalf("price query: %v", got)
	}
	v, ok, err := db.NodeValue(mustID(t, "0.5.2"))
	if err != nil || !ok || v != "Succinct Storage" {
		t.Fatalf("NodeValue = %q, %v, %v", v, ok, err)
	}
	// All strategies still agree with a freshly built oracle.
	var sb strings.Builder
	sb.WriteString(strings.Replace(samples.Bibliography, "</bib>", frag+"</bib>", 1))
	doc := domnav.MustParse(sb.String())
	for _, q := range []string{`/bib/book/title`, `//book[author/last="Stevens"][price<100]`, `//last`} {
		checkAgainstOracle(t, db, doc, q)
	}
}

func TestDeleteSubtreeEndToEnd(t *testing.T) {
	db := loadDB(t, samples.Bibliography, smallPages())
	// Delete the second book; books 3 and 4 shift to ordinals 2 and 3.
	if err := db.DeleteSubtree(mustID(t, "0.2")); err != nil {
		t.Fatal(err)
	}
	got := queryIDs(t, db, `/bib/book`, nil)
	want := []string{"0.1", "0.2", "0.3"}
	if !sameIDs(got, want) {
		t.Fatalf("books after delete: %v", got)
	}
	// Only one Stevens book remains.
	got = queryIDs(t, db, `//book[author/last="Stevens"]`, nil)
	if !sameIDs(got, []string{"0.1"}) {
		t.Fatalf("Stevens after delete: %v", got)
	}
	// Value associations of shifted nodes must have moved with them: the
	// former third book (Data on the Web) is now 0.2.
	v, ok, err := db.NodeValue(mustID(t, "0.2.2"))
	if err != nil || !ok || v != "Data on the Web" {
		t.Fatalf("shifted title = %q, %v, %v", v, ok, err)
	}
	// Cross-check against an oracle built from the updated document.
	updated := deleteSecondBook(samples.Bibliography)
	doc := domnav.MustParse(updated)
	for _, q := range []string{`/bib/book/title`, `//book[price<100]`, `//last`} {
		checkAgainstOracle(t, db, doc, q)
	}
}

// deleteSecondBook removes the second <book>…</book> block textually.
func deleteSecondBook(xml string) string {
	first := strings.Index(xml, "<book")
	second := strings.Index(xml[first+1:], "<book") + first + 1
	endTag := "</book>"
	end := strings.Index(xml[second:], endTag) + second + len(endTag)
	return xml[:second] + xml[end:]
}

func TestInsertFragmentErrors(t *testing.T) {
	db := loadDB(t, samples.Bibliography, nil)
	if err := db.InsertFragment(mustID(t, "0.9.9"), strings.NewReader("<x/>")); err == nil {
		t.Error("insert under missing node should fail")
	}
	if err := db.InsertFragment(mustID(t, "0"), strings.NewReader("<x/><y/>")); err == nil {
		t.Error("multi-root fragment should fail")
	}
	if err := db.DeleteSubtree(mustID(t, "0.9.9")); err == nil {
		t.Error("deleting missing node should fail")
	}
}

func TestUpdateThenPersist(t *testing.T) {
	dir := t.TempDir() + "/db"
	db, err := LoadXML(dir, strings.NewReader(samples.Bibliography), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.InsertFragment(mustID(t, "0"), strings.NewReader(`<book><title>T</title></book>`)); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	got := queryIDs(t, db2, `/bib/book`, nil)
	if len(got) != 5 {
		t.Fatalf("books after reopen: %v", got)
	}
	got = queryIDs(t, db2, `//book[title="T"]`, nil)
	if len(got) != 1 {
		t.Fatalf("title query after reopen: %v", got)
	}
}
