package core

import (
	"context"
	"sort"
	"time"

	"nok/internal/dewey"
	"nok/internal/pattern"
	"nok/internal/planner"
	"nok/internal/stree"
	"nok/internal/symtab"
)

// This file implements the paper's Algorithm 1 (NoK pattern matching) at
// the physical level: the subject tree is only touched through the
// FIRST-CHILD and FOLLOWING-SIBLING primitives of Algorithm 2, so subject
// nodes are visited in document order and every page is read at most once
// per matched region (Proposition 1).
//
// Two refinements over the paper's pseudocode:
//
//   - The paper keeps the returning node in the frontier after it matches
//     ("a matched frontier should be deleted (if it is not the returning
//     node)") so all of its matches are collected. We generalize "returning
//     node" to the *output spine*: every pattern node that is an output
//     node (returning node or a structural-join link source) or has one in
//     its local subtree. Without this, /a/b/c would return only the first
//     b's c children.
//
//   - Sibling-order (⊲) arcs need the set of match ordinals, not just the
//     first match, to decide feasibility exactly (a successor must match at
//     a strictly larger child ordinal than its predecessor's *assigned*
//     ordinal). Children involved in arcs therefore record all ordinals,
//     and feasibility is decided by a greedy assignment in topological
//     order, mirroring the oracle evaluator in internal/domnav.
type matcher struct {
	db *Snapshot

	// syms resolves each pattern node's tag test: wild[n] means any tag;
	// otherwise syms[n] is the symbol, with 0 meaning the tag does not
	// occur in the document at all (the node can never match).
	syms map[*pattern.Node]symtab.Sym
	wild map[*pattern.Node]bool

	// collect accumulates matches for output nodes.
	collect map[*pattern.Node]*[]Match

	// linkPred holds structural-join predicates installed on link-source
	// nodes by the evaluator (bottom-up phase).
	linkPred map[*pattern.Node]func(Match) (bool, error)

	// sticky marks the output spine (computed per NoK tree by newMatcher).
	sticky map[*pattern.Node]bool

	// noSkip disables the (st,lo,hi) page-skip optimization — the
	// ablation knob for the header-skipping benchmark.
	noSkip bool

	// nc attributes page-level navigation work to the owning query
	// (PagesScanned/PagesSkipped in QueryStats).
	nc *stree.NavCounters

	// ctx, when non-nil, is polled every cancelStride subject-node visits
	// so a long navigational match can be abandoned mid-flight.
	ctx     context.Context
	ctxTick int

	stats *QueryStats
}

// cancelStride is how many subject-node visits pass between context polls:
// frequent enough that cancellation lands within microseconds of work,
// cheap enough (one atomic load per stride) to vanish in the noise.
const cancelStride = 64

// checkCancel polls the matcher's context every cancelStride visits.
func (m *matcher) checkCancel() error {
	if m.ctx == nil {
		return nil
	}
	m.ctxTick++
	if m.ctxTick%cancelStride != 0 {
		return nil
	}
	return m.ctx.Err()
}

// Match is one subject-node match: its physical position and Dewey ID.
type Match struct {
	Pos stree.Pos
	ID  dewey.ID
}

// DocPos orders matches in document order.
func (m Match) DocPos() uint64 { return m.Pos.DocPos() }

// QueryStats reports work done by one query evaluation.
type QueryStats struct {
	// Partitions is the number of NoK pattern trees.
	Partitions int
	// StartingPoints is the total number of NoK starting points tried.
	StartingPoints int
	// NPMCalls counts recursive NPM invocations.
	NPMCalls int
	// NodesVisited counts subject-child visits during matching.
	NodesVisited int
	// StrategyUsed records the starting-point strategy that actually ran
	// for each partition — when a requested or planned strategy cannot
	// apply (no usable constraint, wildcard chain) this shows the fallback
	// it silently degraded to, and StrategySkipped marks partitions the
	// evaluator never matched because a linked child partition was empty.
	StrategyUsed []Strategy
	// Requested is the strategy the caller asked for (StrategyAuto unless
	// forced); comparing it with StrategyUsed exposes silent degradation.
	Requested Strategy
	// Planned reports whether the cost-based planner chose the strategies
	// (StrategyAuto with a fresh statistics synopsis); PlanEpoch is the
	// synopsis epoch the plan was costed against, and EstRows/EstPages are
	// the plan's result-cardinality and page-I/O estimates — comparing them
	// with the actual result count and PagesScanned is what the telemetry
	// pipeline's q-error feedback is built from. Both are zero when the
	// §6.2 heuristic ran.
	Planned   bool
	PlanEpoch uint64
	EstRows   float64
	EstPages  float64
	// QueryID is the process-unique ID the telemetry pipeline assigned to
	// this evaluation (0 when telemetry is disabled). The server echoes it
	// in the X-Nok-Query-Id header; /debug/queries and the slow-query log
	// key their records by it.
	QueryID uint64
	// plan retains the chosen plan for lazy rendering in telemetry records
	// (plans are immutable and shared with the plan cache).
	plan *planner.Plan
	// JoinInputs counts match-list elements fed into structural joins.
	JoinInputs int
	// PagesScanned counts pages examined by this query's navigation
	// (FOLLOWING-SIBLING and subtree-end scans); PagesSkipped counts pages
	// those scans excluded through the (st,lo,hi) header bounds — the
	// per-query view of the paper's Algorithm 2 page-skip optimization.
	PagesScanned uint64
	PagesSkipped uint64
	// Parallel reports that the bottom-up phase ran its independent
	// partitions on concurrent workers (plan-gated; see eval.go), and
	// PartitionTimings carries the per-partition wall-clock attribution
	// that /debug/queries exposes as the intra-query fan-out. Timings are
	// only collected on the parallel path — the sequential path's phase
	// trace already times partitions when asked.
	Parallel         bool
	PartitionTimings []PartitionTiming
	// Shards carries per-shard wall-clock attribution when the query ran
	// through the scatter-gather executor (internal/shard): which shards
	// participated, which were pruned from statistics alone and why. Empty
	// for single-store queries.
	Shards []ShardTiming
	// Degraded reports that one or more shards were unavailable and the
	// results are a correct but possibly incomplete subset of the full
	// answer; MissingShards lists them in ascending order. Only the
	// scatter-gather executor sets these, and only when the caller opted
	// into partial results — without the opt-in an unavailable shard fails
	// the query with ErrShardUnavailable instead.
	Degraded      bool
	MissingShards []int
}

// ShardTiming is one shard's contribution to a scatter-gather query.
type ShardTiming struct {
	Shard      int
	Duration   time.Duration
	Results    int
	Skipped    bool
	SkipReason string
	// Unavailable marks a shard that could not be reached; its results are
	// missing from a degraded answer.
	Unavailable bool
}

// ShardHealth is one shard's availability as the scatter-gather executor
// sees it: local shards are always healthy; remote shards report the
// transport's circuit-breaker state and last observed committed epoch.
type ShardHealth struct {
	Shard   int    `json:"shard"`
	Addr    string `json:"addr,omitempty"` // empty for local shards
	Remote  bool   `json:"remote"`
	Healthy bool   `json:"healthy"`
	Breaker string `json:"breaker,omitempty"` // closed, half-open or open
	Epoch   uint64 `json:"epoch"`
}

// PartitionTiming is one partition's contribution to a parallel bottom-up
// phase: which partition, what ran it, how long it took, and what it found.
type PartitionTiming struct {
	Partition int
	Strategy  Strategy
	Duration  time.Duration
	Matches   int
}

// newMatcher prepares a matcher for the pattern nodes of one NoK tree.
func newMatcher(db *Snapshot, nt *pattern.NoKTree, outputs []*pattern.Node, stats *QueryStats) *matcher {
	m := &matcher{
		db:       db,
		syms:     make(map[*pattern.Node]symtab.Sym),
		wild:     make(map[*pattern.Node]bool),
		collect:  make(map[*pattern.Node]*[]Match),
		linkPred: make(map[*pattern.Node]func(Match) (bool, error)),
		sticky:   make(map[*pattern.Node]bool),
		stats:    stats,
	}
	for _, n := range nt.Nodes() {
		if n.Test == "*" {
			m.wild[n] = true
			continue
		}
		if n.IsVirtualRoot() {
			continue
		}
		if sym, ok := db.Tags.Lookup(n.Test); ok {
			m.syms[n] = sym
		} // else syms[n] stays 0: impossible test
	}
	for _, o := range outputs {
		var list []Match
		m.collect[o] = &list
		// Mark the spine: o and its ancestors within the NoK tree.
		m.markSpine(nt, o)
	}
	return m
}

// markSpine marks every node on the local path from nt.Root to o.
func (m *matcher) markSpine(nt *pattern.NoKTree, o *pattern.Node) {
	var path []*pattern.Node
	var rec func(n *pattern.Node) bool
	rec = func(n *pattern.Node) bool {
		path = append(path, n)
		if n == o {
			for _, p := range path {
				m.sticky[p] = true
			}
			return true
		}
		for _, c := range pattern.LocalChildren(n) {
			if rec(c) {
				return true
			}
		}
		path = path[:len(path)-1]
		return false
	}
	rec(nt.Root)
}

// results returns the collected matches for an output node, sorted in
// document order and deduplicated.
func (m *matcher) results(o *pattern.Node) []Match {
	list := *m.collect[o]
	sort.Slice(list, func(i, j int) bool { return list[i].DocPos() < list[j].DocPos() })
	out := list[:0]
	var last uint64
	for i, mt := range list {
		if dp := mt.DocPos(); i == 0 || dp != last {
			out = append(out, mt)
			last = dp
		}
	}
	return out
}

// nodeMatches checks the node-local constraints of p against subject node
// u: tag test, value constraint, and any installed link predicate.
func (m *matcher) nodeMatches(p *pattern.Node, u Match, uSym symtab.Sym) (bool, error) {
	if !m.wild[p] {
		sym, ok := m.syms[p]
		if !ok || sym != uSym {
			return false, nil
		}
	}
	if p.HasValueConstraint() {
		val, _, err := m.db.NodeValue(u.ID)
		if err != nil {
			return false, err
		}
		if !p.Cmp.Eval(val, p.Literal) {
			return false, nil
		}
	}
	if pred := m.linkPred[p]; pred != nil {
		ok, err := pred(u)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// collectorMarks snapshots all collector lengths for rollback.
func (m *matcher) collectorMarks() map[*pattern.Node]int {
	if len(m.collect) == 0 {
		return nil
	}
	marks := make(map[*pattern.Node]int, len(m.collect))
	for n, l := range m.collect {
		marks[n] = len(*l)
	}
	return marks
}

func (m *matcher) rollback(marks map[*pattern.Node]int) {
	for n, l := range m.collect {
		*l = (*l)[:marks[n]]
	}
}

// collectorRange records the collector span appended by one sticky-child
// match (used to splice out matches invalidated by ⊲ feasibility).
type collectorRange struct {
	ord    int
	from   map[*pattern.Node]int
	to     map[*pattern.Node]int
	picked bool
}

// childState tracks one pattern child during the children loop.
type childState struct {
	node *pattern.Node
	// preds are the local ⊲ predecessors among the same sibling set.
	preds []*childState
	// ords lists child ordinals where the subtree matched.
	ords []int
	// ranges are per-match collector spans (sticky children only).
	ranges []*collectorRange
	// hasArcs is true when the node participates in any ⊲ arc.
	hasArcs bool
}

func (cs *childState) firstOrd() int {
	if len(cs.ords) == 0 {
		return -1
	}
	return cs.ords[0]
}

// npm is Algorithm 1: does the NoK pattern subtree rooted at p match the
// subject subtree rooted at u? The caller has already verified p's
// node-local constraints against u. Collector entries appended during a
// failed invocation are rolled back before returning.
func (m *matcher) npm(p *pattern.Node, u Match) (bool, error) {
	m.stats.NPMCalls++
	entryMarks := m.collectorMarks()

	if list, ok := m.collect[p]; ok {
		*list = append(*list, u)
	}

	children := pattern.LocalChildren(p)
	if len(children) == 0 {
		return true, nil
	}

	states := make([]*childState, len(children))
	byNode := make(map[*pattern.Node]*childState, len(children))
	for i, c := range children {
		states[i] = &childState{node: c}
		byNode[c] = states[i]
	}
	for _, cs := range states {
		for _, pred := range cs.node.PrecededBy {
			if ps, ok := byNode[pred]; ok {
				cs.preds = append(cs.preds, ps)
				cs.hasArcs = true
				ps.hasArcs = true
			}
		}
	}

	// The children loop: FIRST-CHILD then FOLLOWING-SIBLING, in document
	// order, exactly Algorithm 1's lines 4 and 13.
	uc, ok, err := m.firstChild(p, u)
	if err != nil {
		return false, err
	}
	ord := 0
	for ok {
		ord++
		m.stats.NodesVisited++
		if err := m.checkCancel(); err != nil {
			return false, err
		}
		var childID dewey.ID
		if p.IsVirtualRoot() {
			childID = dewey.Root()
		} else {
			childID = u.ID.Child(uint32(ord))
		}
		child := Match{Pos: uc, ID: childID}
		var childSym symtab.Sym
		symKnown := false

		for _, cs := range states {
			if !m.needsScan(cs) {
				continue
			}
			if !m.eligibleAt(cs, ord) {
				continue
			}
			if !symKnown {
				childSym, err = m.db.Tree.SymAt(uc)
				if err != nil {
					return false, err
				}
				symKnown = true
			}
			okNode, err := m.nodeMatches(cs.node, child, childSym)
			if err != nil {
				return false, err
			}
			if !okNode {
				continue
			}
			marks := m.collectorMarks()
			matched, err := m.npm(cs.node, child)
			if err != nil {
				return false, err
			}
			if matched {
				cs.ords = append(cs.ords, ord)
				if m.sticky[cs.node] {
					cs.ranges = append(cs.ranges, &collectorRange{
						ord: ord, from: marks, to: m.collectorMarks(),
					})
				}
			} else {
				m.rollback(marks)
			}
		}

		if m.allDone(states) {
			break
		}
		uc, ok, err = m.db.Tree.FollowingSiblingCounted(uc, !m.noSkip, m.nc)
		if err != nil {
			return false, err
		}
	}

	// Feasibility: a joint assignment must exist.
	if !feasibleAssignment(states, nil, -1) {
		m.rollback(entryMarks)
		return false, nil
	}
	// Splice out sticky matches that no assignment can pin.
	m.filterPinned(states)
	return true, nil
}

// needsScan reports whether child cs still needs to be tried against
// further subject children. Pure existential children stop after their
// first match; sticky children (output spine) and arc-involved children
// record every match.
func (m *matcher) needsScan(cs *childState) bool {
	if len(cs.ords) == 0 {
		return true
	}
	return m.sticky[cs.node] || cs.hasArcs
}

// eligibleAt reports whether cs may match at the given ordinal: all its ⊲
// predecessors must already have a match at a strictly smaller ordinal.
func (m *matcher) eligibleAt(cs *childState, ord int) bool {
	for _, pred := range cs.preds {
		f := pred.firstOrd()
		if f < 0 || f >= ord {
			return false
		}
	}
	return true
}

// allDone reports whether scanning further subject children cannot change
// the outcome: every child has matched and none needs more matches.
func (m *matcher) allDone(states []*childState) bool {
	for _, cs := range states {
		if m.needsScan(cs) {
			return false
		}
	}
	return true
}

// feasibleAssignment decides whether the recorded match ordinals admit an
// assignment respecting the ⊲ partial order; with pin non-nil, the pinned
// child must be assigned exactly pinOrd. Greedy in topological order is
// exact (see internal/domnav.assignLocal for the argument).
func feasibleAssignment(states []*childState, pin *childState, pinOrd int) bool {
	order := topoStates(states)
	if order == nil {
		return false
	}
	assigned := make(map[*childState]int, len(states))
	for _, cs := range order {
		lower := -1
		for _, pred := range cs.preds {
			if a := assigned[pred]; a > lower {
				lower = a
			}
		}
		if cs == pin {
			if pinOrd <= lower || !containsOrd(cs.ords, pinOrd) {
				return false
			}
			assigned[cs] = pinOrd
			continue
		}
		found := -1
		for _, o := range cs.ords {
			if o > lower {
				found = o
				break
			}
		}
		if found < 0 {
			return false
		}
		assigned[cs] = found
	}
	return true
}

func containsOrd(ords []int, ord int) bool {
	i := sort.SearchInts(ords, ord)
	return i < len(ords) && ords[i] == ord
}

func topoStates(states []*childState) []*childState {
	indeg := make(map[*childState]int, len(states))
	succs := make(map[*childState][]*childState, len(states))
	for _, cs := range states {
		for _, p := range cs.preds {
			indeg[cs]++
			succs[p] = append(succs[p], cs)
		}
	}
	var queue, out []*childState
	for _, cs := range states {
		if indeg[cs] == 0 {
			queue = append(queue, cs)
		}
	}
	for len(queue) > 0 {
		cs := queue[0]
		queue = queue[1:]
		out = append(out, cs)
		for _, s := range succs[cs] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(out) != len(states) {
		return nil
	}
	return out
}

// filterPinned removes collector spans of sticky-child matches that cannot
// participate in any valid assignment. Spans from different children
// interleave in collector offset space, so all invalid spans are gathered
// first and spliced from the highest offsets down.
func (m *matcher) filterPinned(states []*childState) {
	type span struct {
		list     *[]Match
		from, to int
	}
	var spans []span
	for _, cs := range states {
		if len(cs.ranges) == 0 || !cs.hasArcs {
			continue // unconstrained: every match is valid
		}
		for _, r := range cs.ranges {
			if feasibleAssignment(states, cs, r.ord) {
				continue
			}
			for n, list := range m.collect {
				from, to := r.from[n], r.to[n]
				if from != to {
					spans = append(spans, span{list, from, to})
				}
			}
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].from > spans[j].from })
	for _, s := range spans {
		*s.list = append((*s.list)[:s.from], (*s.list)[s.to:]...)
	}
}

// firstChild returns the first subject child for the children loop. The
// virtual pattern root's only "child" is the document root element.
func (m *matcher) firstChild(p *pattern.Node, u Match) (stree.Pos, bool, error) {
	if p.IsVirtualRoot() {
		root, err := m.db.Tree.Root()
		if err == stree.ErrEmptyStore {
			return stree.Pos{}, false, nil
		}
		return root, err == nil, err
	}
	return m.db.Tree.FirstChild(u.Pos)
}

// matchAt verifies node-local constraints and runs npm — the entry point
// used by the evaluator for each starting point.
func (m *matcher) matchAt(p *pattern.Node, u Match) (bool, error) {
	if p.IsVirtualRoot() {
		return m.npm(p, u)
	}
	sym, err := m.db.Tree.SymAt(u.Pos)
	if err != nil {
		return false, err
	}
	ok, err := m.nodeMatches(p, u, sym)
	if err != nil || !ok {
		return false, err
	}
	return m.npm(p, u)
}
