package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"nok/internal/join"
	"nok/internal/obs"
	"nok/internal/pattern"
	"nok/internal/planner"
	"nok/internal/stree"
	"nok/internal/telemetry"
)

// Process-wide query metrics, exposed through the default obs registry.
var (
	mQueries      = obs.Default.Counter("nok_queries_total", "path queries evaluated")
	mQueryErrors  = obs.Default.Counter("nok_query_errors_total", "path queries that returned an error")
	mQuerySeconds = obs.Default.Histogram("nok_query_seconds", "end-to-end query evaluation latency in seconds", obs.LatencyBuckets)
	mResults      = obs.Default.Counter("nok_query_results_total", "matches returned across all queries")
)

// This file is the query evaluator: it glues NoK pattern matching
// (Algorithm 1 / npm.go) to structural joins across the NoK partition
// graph, realizing the paper's two-step architecture — "first partition the
// pattern tree into interconnected NoK pattern trees, to which we apply the
// more efficient navigational pattern matching algorithm; then join the
// results of the NoK pattern matching based on their structural
// relationships".
//
// Evaluation proceeds in two phases:
//
//  1. Bottom-up: for every non-top partition T, compute ExtMatch(T) — the
//     subject nodes where T's NoK pattern matches *and* every descendant
//     link of T is satisfied. Child-link satisfaction is folded into NoK
//     matching as a predicate on the link-source node: "does some
//     ExtMatch(child) lie inside this node's interval?" — a containment
//     test on the paper's interval surrogate (§5), checked by binary
//     search on the sorted child match list.
//
//  2. Top-down: walk the partition chain from the top partition to the one
//     containing the returning node, narrowing starting points through
//     structural (containment) joins, and finally collect the returning
//     node's matches.
type QueryOptions struct {
	// Strategy forces a starting-point strategy; StrategyAuto asks the
	// cost-based planner when a fresh statistics synopsis exists and
	// otherwise applies the paper's §6.2 heuristic.
	Strategy Strategy
	// DisablePlanner keeps StrategyAuto on the paper's heuristic even when
	// a fresh synopsis exists (ablation knob, and the safety hatch should a
	// plan ever misbehave).
	DisablePlanner bool
	// DisablePageSkip turns off the header-table page-skip optimization
	// in FOLLOWING-SIBLING (ablation benchmark).
	DisablePageSkip bool
	// DisableParallel keeps the bottom-up phase sequential even when the
	// plan marks the query parallel-eligible — an ablation switch and an
	// escape hatch for single-core deployments.
	DisableParallel bool
	// Trace, when non-nil, records the evaluation's timed phases (parse,
	// partition, starting-point lookup, NoK matching, structural joins) as
	// spans — the raw material of EXPLAIN ANALYZE. A nil Trace costs
	// nothing.
	Trace *obs.Trace
	// Ctx, when non-nil, is polled at cancellation checkpoints: before each
	// starting point, at each structural-join hop, and every few dozen
	// subject-node visits inside the NoK matching loop. On cancellation or
	// deadline expiry the evaluation stops and returns ctx.Err(). A nil Ctx
	// costs nothing.
	Ctx context.Context
}

func (opts *QueryOptions) trace() *obs.Trace {
	if opts == nil {
		return nil
	}
	return opts.Trace
}

func (opts *QueryOptions) ctx() context.Context {
	if opts == nil {
		return nil
	}
	return opts.Ctx
}

// ctxErr is the nil-safe checkpoint used between matching units.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// Query parses and evaluates a path expression, returning the matches of
// its returning node in document order.
func (db *Snapshot) Query(expr string, opts *QueryOptions) ([]Match, *QueryStats, error) {
	begin := time.Now()
	sp := opts.trace().Start("parse")
	t, err := pattern.Parse(expr)
	sp.End()
	if err != nil {
		mQueryErrors.Inc()
		// Parse failures get a flight-recorder record too — a client sending
		// malformed queries is exactly the kind of thing /debug/queries
		// should surface.
		if telemetry.Default.Enabled() {
			telemetry.Default.Capture(&telemetry.Record{
				Expr:     expr,
				Start:    begin,
				Duration: time.Since(begin),
				Epoch:    db.epoch,
				Error:    err.Error(),
			})
		}
		return nil, nil, err
	}
	return db.QueryPattern(t, opts)
}

// QueryPattern evaluates a parsed pattern tree.
func (db *Snapshot) QueryPattern(t *pattern.Tree, opts *QueryOptions) ([]Match, *QueryStats, error) {
	mQueries.Inc()
	begin := time.Now()
	ms, stats, err := db.queryPattern(t, opts)
	dur := time.Since(begin)
	if err != nil {
		mQueryErrors.Inc()
	} else {
		mResults.Add(int64(len(ms)))
	}
	if telemetry.Default.Enabled() {
		rec := buildRecord(db, t.String(), stats, len(ms), begin, dur, opts.trace(), err)
		telemetry.Default.Capture(rec)
		telemetry.Default.ObserveQuery(rec)
		if stats != nil {
			stats.QueryID = rec.ID
		}
	} else {
		mQuerySeconds.Observe(dur.Seconds())
	}
	return ms, stats, err
}

// buildRecord flattens one evaluation into its telemetry record. stats may
// be nil (evaluation failed before stats existed); the record still carries
// the expression, timing, and error.
func buildRecord(db *Snapshot, expr string, stats *QueryStats, results int, begin time.Time, dur time.Duration, tr *obs.Trace, err error) *telemetry.Record {
	rec := &telemetry.Record{
		Expr:     expr,
		Start:    begin,
		Duration: dur,
		Results:  results,
		Epoch:    db.epoch,
	}
	if stats != nil {
		rec.Partitions = stats.Partitions
		rec.Strategies = strategyNames(stats.StrategyUsed)
		rec.Planned = stats.Planned
		rec.PlanEpoch = stats.PlanEpoch
		rec.EstRows = stats.EstRows
		rec.EstPages = stats.EstPages
		rec.PagesScanned = stats.PagesScanned
		rec.PagesSkipped = stats.PagesSkipped
		rec.StartingPoints = stats.StartingPoints
		rec.NodesVisited = stats.NodesVisited
		rec.Parallel = stats.Parallel
		for _, pt := range stats.PartitionTimings {
			rec.Parts = append(rec.Parts, telemetry.PartTiming{
				Partition: pt.Partition,
				Strategy:  pt.Strategy.String(),
				Micros:    pt.Duration.Microseconds(),
				Matches:   pt.Matches,
			})
		}
		if stats.plan != nil {
			rec.Plan = stats.plan
		}
	}
	if tr != nil {
		rec.Phases = tr.Phases()
	}
	if err != nil {
		rec.Error = err.Error()
	}
	return rec
}

// singleStrategy holds a shared one-element label slice per strategy, so
// capturing the overwhelmingly common single-partition query doesn't
// allocate. Records are read-only after capture, so sharing is safe.
var singleStrategy = map[Strategy][]string{
	StrategyAuto:       {StrategyAuto.String()},
	StrategyScan:       {StrategyScan.String()},
	StrategyTagIndex:   {StrategyTagIndex.String()},
	StrategyValueIndex: {StrategyValueIndex.String()},
	StrategyPathIndex:  {StrategyPathIndex.String()},
	StrategySkipped:    {StrategySkipped.String()},
}

func strategyNames(used []Strategy) []string {
	if len(used) == 1 {
		if s, ok := singleStrategy[used[0]]; ok {
			return s
		}
	}
	out := make([]string, len(used))
	for i, s := range used {
		out[i] = s.String()
	}
	return out
}

func (db *Snapshot) queryPattern(t *pattern.Tree, opts *QueryOptions) ([]Match, *QueryStats, error) {
	strat := StrategyAuto
	noSkip := false
	noPlan := false
	noParallel := false
	if opts != nil {
		strat = opts.Strategy
		noSkip = opts.DisablePageSkip
		noPlan = opts.DisablePlanner
		noParallel = opts.DisableParallel
	}
	tr := opts.trace()
	ctx := opts.ctx()
	if err := ctxErr(ctx); err != nil {
		return nil, nil, err
	}

	sp := tr.Start("partition")
	parts := pattern.Partition(t)
	sp.Set("partitions", len(parts))
	sp.End()

	// The anchor is needed both by the planner (the top partition's access
	// choice includes the path index over the anchored chain) and by phase 2.
	anchor, chainTests := topAnchor(parts[0], t)

	// Under StrategyAuto a fresh statistics synopsis upgrades the §6.2
	// heuristic to the cost-based planner; a forced strategy, a disabled
	// planner, or a missing/stale synopsis all leave plan nil.
	var plan *planner.Plan
	if strat == StrategyAuto && !noPlan {
		plan = db.planFor(t, parts, anchor, chainTests)
	}

	stats := &QueryStats{
		Partitions:   len(parts),
		StrategyUsed: make([]Strategy, len(parts)),
		Requested:    strat,
	}
	if plan != nil {
		stats.Planned = true
		stats.PlanEpoch = plan.Epoch
		stats.EstRows = plan.EstRows
		stats.EstPages = plan.EstTotalPages
		stats.plan = plan
		psp := tr.Start("plan")
		psp.Set("epoch", int(plan.Epoch))
		psp.Set("est-pages", int(plan.EstTotalPages))
		psp.Set("est-rows", int(plan.EstRows))
		psp.End()
	}

	// nc attributes page-level navigation work (examined vs skipped via the
	// (st,lo,hi) headers) to this query alone; the store- and process-global
	// counters keep aggregating independently.
	nc := &stree.NavCounters{}
	defer func() {
		stats.PagesScanned = nc.Examined
		stats.PagesSkipped = nc.Skipped
	}()

	// Phase 1: bottom-up ExtMatch. When the plan marks the query
	// parallel-eligible (independent partitions, enough estimated page
	// work), the partitions run on concurrent workers scheduled by their
	// dependency tree; otherwise the sequential path below walks the
	// plan's cost order (or reverse topological order without a plan).
	if plan != nil && plan.Parallel && !noParallel && len(parts) > 2 {
		psp := tr.Start("ext-match parallel")
		ext, extPts, err := db.parallelExtMatch(parts, plan, noSkip, psp, ctx, stats, nc)
		psp.End()
		if err != nil {
			return nil, nil, err
		}
		return db.topDown(t, parts, plan, strat, noSkip, anchor, chainTests, tr, ctx, stats, nc, ext, extPts)
	}
	order := make([]int, 0, len(parts)-1)
	if plan != nil && len(plan.Order) == len(parts)-1 {
		order = append(order, plan.Order...)
	} else {
		for i := len(parts) - 1; i >= 1; i-- {
			order = append(order, i)
		}
	}
	ext := make(map[*pattern.NoKTree][]Match)
	extPts := make(map[*pattern.NoKTree][]uint64)
	for _, i := range order {
		nt := parts[i]
		psp := tr.Start(fmt.Sprintf("ext-match partition=%d", i))
		psp.Set("root", nt.Root.Test)

		// Short-circuit: a linked child partition with no matches makes the
		// link predicate unsatisfiable, so this partition's ExtMatch is empty
		// without touching a page. (Sound for every link axis: an empty child
		// set satisfies neither containment nor following existence.)
		short := false
		for _, l := range nt.Links {
			if pts, ok := extPts[l.To]; ok && len(pts) == 0 {
				short = true
				break
			}
		}
		if short {
			ext[nt] = nil
			extPts[nt] = nil
			stats.StrategyUsed[i] = StrategySkipped
			psp.Set("shortcut", "empty child partition")
			psp.Set("matches", 0)
			psp.End()
			continue
		}

		ncBefore := *nc
		npmBefore, visBefore := stats.NPMCalls, stats.NodesVisited

		m := newMatcher(db, nt, nil, stats)
		m.noSkip = noSkip
		m.nc = nc
		m.ctx = ctx
		db.installLinkPreds(m, nt, extPts)

		partStrat := strat
		if plan != nil {
			partStrat = strategyForAccess(plan.Parts[i].Access)
		}
		ssp := psp.Start("locate-starts")
		startPoints, used, err := db.starts(nt, partStrat, nc)
		ssp.End()
		if err != nil {
			return nil, nil, err
		}
		ssp.Set("strategy", used.String())
		ssp.Set("starts", len(startPoints))
		if plan != nil {
			ssp.Set("est-starts", int(plan.Parts[i].EstStarts))
			ssp.Set("est-pages", int(plan.Parts[i].EstPages))
		}
		stats.StrategyUsed[i] = used
		stats.StartingPoints += len(startPoints)

		var matches []Match
		for _, s := range startPoints {
			if err := ctxErr(ctx); err != nil {
				return nil, nil, err
			}
			ok, err := m.matchAt(nt.Root, s)
			if err != nil {
				return nil, nil, err
			}
			if ok {
				matches = append(matches, s)
			}
		}
		ext[nt] = matches
		extPts[nt] = docPosList(matches)
		psp.Set("matches", len(matches))
		psp.Set("npm-calls", stats.NPMCalls-npmBefore)
		psp.Set("nodes-visited", stats.NodesVisited-visBefore)
		psp.Set("pages-scanned", nc.Examined-ncBefore.Examined)
		psp.Set("pages-skipped", nc.Skipped-ncBefore.Skipped)
		psp.End()
	}

	return db.topDown(t, parts, plan, strat, noSkip, anchor, chainTests, tr, ctx, stats, nc, ext, extPts)
}

// topDown is phase 2: walk the partition chain from the top partition to
// the one containing the returning node, narrowing starting points through
// structural joins. Shared by the sequential and parallel bottom-up paths.
func (db *Snapshot) topDown(
	t *pattern.Tree,
	parts []*pattern.NoKTree,
	plan *planner.Plan,
	strat Strategy,
	noSkip bool,
	anchor *pattern.Node,
	chainTests []string,
	tr *obs.Trace,
	ctx context.Context,
	stats *QueryStats,
	nc *stree.NavCounters,
	ext map[*pattern.NoKTree][]Match,
	extPts map[*pattern.NoKTree][]uint64,
) ([]Match, *QueryStats, error) {
	tsp := tr.Start("top-down")
	defer tsp.End()
	chain := pattern.PathToReturn(parts, t)
	if len(chain) == 0 {
		return nil, nil, fmt.Errorf("core: returning node not found in any partition")
	}
	tsp.Set("chain", len(chain))
	virtual := Match{Pos: stree.Pos{Chain: -1, Off: -1}}
	trueStarts := []Match{virtual}

	// Anchored evaluation of the top partition: when the pattern starts
	// with a pure unconstrained '/' chain (e.g. /authors/author[...]), the
	// chain's end — the anchor — can be located through the indexes like
	// any NoK root, with ancestors verified by Dewey-prefix lookups. This
	// is what makes '/'-rooted high-selectivity queries index-driven
	// rather than full navigations from the document root.
	topRoot := t.Root // effective pattern node matched at trueStarts
	if anchor != nil {
		topStrat := strat
		if plan != nil {
			topStrat = strategyForAccess(plan.Parts[0].Access)
		}
		asp := tsp.Start("locate-anchor")
		starts, used, err := db.anchoredStarts(parts[0], anchor, chainTests, topStrat, nc)
		asp.End()
		if err != nil {
			return nil, nil, err
		}
		asp.Set("anchor", anchor.Test)
		asp.Set("strategy", used.String())
		asp.Set("starts", len(starts))
		if plan != nil {
			asp.Set("est-starts", int(plan.Parts[0].EstStarts))
			asp.Set("est-pages", int(plan.Parts[0].EstPages))
		}
		stats.StrategyUsed[0] = used
		stats.StartingPoints += len(starts)
		trueStarts = starts
		topRoot = anchor
	} else {
		// Virtual-root navigation: the top partition is matched by walking
		// from the document root, which is scan-class work.
		stats.StrategyUsed[0] = StrategyScan
	}

	for k := 0; k < len(chain); k++ {
		nt := chain[k]
		last := k == len(chain)-1
		hsp := tsp.Start(fmt.Sprintf("match partition=%d", nt.Index()))
		hsp.Set("starts", len(trueStarts))
		ncBefore := *nc

		// Shortcut: when the returning node is this partition's root and
		// this is the last hop, the filtered ExtMatch set *is* the answer.
		if last && nt.Root == t.Return && nt.Parent != nil {
			hsp.Set("matches", len(trueStarts))
			hsp.Set("shortcut", "ext-match reuse")
			hsp.End()
			return trueStarts, stats, nil
		}

		var outputs []*pattern.Node
		var downLink *pattern.Link
		if !last {
			for _, l := range nt.Links {
				if l.To == chain[k+1] {
					downLink = l
					break
				}
			}
			if downLink == nil {
				return nil, nil, fmt.Errorf("core: no link from partition %d to %d", nt.Index(), chain[k+1].Index())
			}
			outputs = append(outputs, downLink.From)
		}
		if last {
			outputs = append(outputs, t.Return)
		}

		m := newMatcher(db, nt, outputs, stats)
		m.noSkip = noSkip
		m.nc = nc
		m.ctx = ctx
		db.installLinkPreds(m, nt, extPts)
		root := nt.Root
		if k == 0 {
			root = topRoot
		}
		for _, s := range trueStarts {
			if err := ctxErr(ctx); err != nil {
				return nil, nil, err
			}
			ok, err := m.matchAt(root, s)
			if err != nil {
				return nil, nil, err
			}
			_ = ok
		}
		hsp.Set("pages-scanned", nc.Examined-ncBefore.Examined)
		hsp.Set("pages-skipped", nc.Skipped-ncBefore.Skipped)
		if last {
			res := m.results(t.Return)
			hsp.Set("matches", len(res))
			hsp.End()
			return res, stats, nil
		}

		// Structural join: narrow the child partition's ExtMatch to nodes
		// inside (or after, for the following axis) a matched link source.
		fromMatches := m.results(downLink.From)
		childExt := ext[chain[k+1]]
		childPts := extPts[chain[k+1]]
		hsp.Set("matches", len(fromMatches))
		hsp.End()

		jsp := tsp.Start(fmt.Sprintf("join partition=%d→%d", nt.Index(), chain[k+1].Index()))
		jsp.Set("axis", axisName(downLink.Axis))

		if downLink.From.IsVirtualRoot() {
			// The virtual root contains every node and nothing follows the
			// document; no interval arithmetic needed (or possible — the
			// virtual root has no physical position).
			if len(fromMatches) > 0 && downLink.Axis != pattern.Following {
				trueStarts = childExt
			} else {
				trueStarts = nil
			}
			jsp.Set("kept", len(trueStarts))
			jsp.Set("shortcut", "virtual root")
			jsp.End()
			continue
		}

		ivs, err := db.intervalsOf(nt, downLink.From, fromMatches, nc)
		if err != nil {
			return nil, nil, err
		}
		stats.JoinInputs += len(ivs) + len(childPts)
		jsp.Set("inputs", len(ivs)+len(childPts))

		var keep []int
		if downLink.Axis == pattern.Following {
			keep = join.AfterAny(childPts, ivs)
		} else {
			keep = join.ContainedIn(childPts, ivs)
		}
		trueStarts = make([]Match, len(keep))
		for i, idx := range keep {
			trueStarts[i] = childExt[idx]
		}
		jsp.Set("kept", len(keep))
		jsp.End()
	}
	return nil, stats, fmt.Errorf("core: unreachable evaluation state")
}

// axisName renders a link axis for trace annotations.
func axisName(a pattern.Axis) string {
	switch a {
	case pattern.Child:
		return "child"
	case pattern.Descendant:
		return "descendant"
	case pattern.FollowingSibling:
		return "following-sibling"
	case pattern.Following:
		return "following"
	default:
		return fmt.Sprintf("axis(%d)", int(a))
	}
}

// installLinkPreds attaches child-partition existence predicates to link
// sources — the bottom-up structural join folded into NoK matching.
func (db *Snapshot) installLinkPreds(m *matcher, nt *pattern.NoKTree, extPts map[*pattern.NoKTree][]uint64) {
	for _, l := range nt.Links {
		link := l
		pts := extPts[link.To]
		prev := m.linkPred[link.From]
		m.linkPred[link.From] = func(u Match) (bool, error) {
			if prev != nil {
				ok, err := prev(u)
				if err != nil || !ok {
					return false, err
				}
			}
			iv, err := db.nodeInterval(nt, link.From, u, m.nc)
			if err != nil {
				return false, err
			}
			if link.Axis == pattern.Following {
				return join.ExistsAfter(pts, iv), nil
			}
			return join.ExistsWithin(pts, iv), nil
		}
	}
}

// nodeInterval returns the interval of a matched node; the virtual root's
// interval spans the whole document.
func (db *Snapshot) nodeInterval(nt *pattern.NoKTree, n *pattern.Node, u Match, nc *stree.NavCounters) (stree.Interval, error) {
	if n.IsVirtualRoot() {
		return stree.Interval{Start: 0, End: math.MaxUint64}, nil
	}
	return db.Tree.IntervalCounted(u.Pos, nc)
}

// intervalsOf computes intervals for a list of matches of node n.
func (db *Snapshot) intervalsOf(nt *pattern.NoKTree, n *pattern.Node, ms []Match, nc *stree.NavCounters) ([]stree.Interval, error) {
	out := make([]stree.Interval, len(ms))
	for i, u := range ms {
		iv, err := db.nodeInterval(nt, n, u, nc)
		if err != nil {
			return nil, err
		}
		out[i] = iv
	}
	return out, nil
}

func docPosList(ms []Match) []uint64 {
	out := make([]uint64, len(ms))
	for i, m := range ms {
		out[i] = m.DocPos()
	}
	return out
}
