package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nok/internal/pager"
	"nok/internal/samples"
)

func TestVerifyCleanStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := LoadXML(dir, strings.NewReader(samples.Bibliography), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	r := db.Verify(true)
	for _, is := range r.Issues {
		t.Errorf("fresh store: %s", is)
	}
	if r.PagesChecked == 0 || r.EntriesChecked == 0 || r.RecordsChecked == 0 {
		t.Errorf("deep verify did no work: %+v", r)
	}

	// Still clean after a committed update.
	if err := db.InsertFragment(mustID(t, "0"), strings.NewReader("<note><title>x</title></note>")); err != nil {
		t.Fatal(err)
	}
	r = db.Verify(true)
	for _, is := range r.Issues {
		t.Errorf("post-insert: %s", is)
	}

	// And after a delete.
	if err := db.DeleteSubtree(mustID(t, "0.1")); err != nil {
		t.Fatal(err)
	}
	r = db.Verify(true)
	for _, is := range r.Issues {
		t.Errorf("post-delete: %s", is)
	}
}

// TestVerifyDetectsFlippedByte: bit rot inside a tree page that Open does
// not touch must still be caught by a deep verify.
func TestVerifyDetectsFlippedByte(t *testing.T) {
	dir := buildDir(t)
	path := filepath.Join(dir, storeFiles(t, dir)[roleTree])
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the last page's reserved trailer area: the per-page
	// CRC does not cover it, so Open and all structural checks pass, but
	// the manifest's whole-file checksum must still flag the file.
	pos := len(raw) - 2
	raw[pos] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("Open rejected reserved-trailer damage it should not see: %v", err)
	}
	defer db.Close()
	r := db.Verify(true)
	if r.OK() {
		t.Error("deep verify missed a flipped byte in tree.pg")
	}
}

// TestVerifyDetectsCountMismatch: quick verify catches cross-component
// disagreement (here simulated by corrupting the in-memory stats).
func TestVerifyDetectsCountMismatch(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := LoadXML(dir, strings.NewReader(samples.Bibliography), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.total += 3
	r := db.Verify(false)
	if r.OK() {
		t.Error("quick verify missed a stats total mismatch")
	}
}

// TestVerifyBrokenStoreRefuses: a store stuck in a failed update reports
// that and skips further checks (its in-memory state is unreliable).
func TestVerifyBrokenStoreRefuses(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := LoadXML(dir, strings.NewReader(samples.Bibliography), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.broken = true
	r := db.Verify(true)
	if r.OK() {
		t.Error("verify passed a broken store")
	}
	if r.PagesChecked != 0 {
		t.Error("verify kept checking a broken store")
	}
}

func TestVerifyPagesHelperSeesAllPages(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := LoadXML(dir, strings.NewReader(samples.Bibliography), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	n, err := db.treeFile.VerifyPages(func(id pager.PageID, err error) {
		t.Errorf("page %d: %v", id, err)
	})
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 {
		t.Errorf("tree file has only %d pages", n)
	}
}
