package core

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nok/internal/pager"
	"nok/internal/samples"
)

func TestVerifyCleanStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := LoadXML(dir, strings.NewReader(samples.Bibliography), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	r := db.Verify(true)
	for _, is := range r.Issues {
		t.Errorf("fresh store: %s", is)
	}
	if r.PagesChecked == 0 || r.EntriesChecked == 0 || r.RecordsChecked == 0 {
		t.Errorf("deep verify did no work: %+v", r)
	}

	// Still clean after a committed update.
	if err := db.InsertFragment(mustID(t, "0"), strings.NewReader("<note><title>x</title></note>")); err != nil {
		t.Fatal(err)
	}
	r = db.Verify(true)
	for _, is := range r.Issues {
		t.Errorf("post-insert: %s", is)
	}

	// And after a delete.
	if err := db.DeleteSubtree(mustID(t, "0.1")); err != nil {
		t.Fatal(err)
	}
	r = db.Verify(true)
	for _, is := range r.Issues {
		t.Errorf("post-delete: %s", is)
	}
}

// TestVerifyDetectsFlippedByte: bit rot inside a tree page region that
// Open does not read must still be caught by a deep verify. Open walks
// every committed page's checksummed payload, and tree.pg carries no
// whole-file checksum (its free pages hold stale bytes by design under
// copy-on-write), so the one region nothing reads is the reserved trailer
// slack after each page's CRC — always zero as written. Deep verification
// must flag nonzero slack on committed pages.
func TestVerifyDetectsFlippedByte(t *testing.T) {
	dir := buildDir(t)
	path := filepath.Join(dir, storeFiles(t, dir)[roleTree])
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a reserved trailer byte in every data page: free pages are
	// legitimately ignored, but at least one page is referenced by the
	// committed table and must be flagged.
	pageSize := int(binary.BigEndian.Uint32(raw[6:10]))
	physSize := pageSize + pager.TrailerLen
	flipped := 0
	for end := 2 * physSize; end <= len(raw); end += physSize {
		raw[end-2] ^= 0xFF
		flipped++
	}
	if flipped == 0 {
		t.Fatal("tree.pg holds no data pages")
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("Open rejected reserved-trailer damage it should not see: %v", err)
	}
	defer db.Close()
	r := db.Verify(true)
	if r.OK() {
		t.Error("deep verify missed a flipped byte in tree.pg")
	}
}

// TestVerifyDetectsCountMismatch: quick verify catches cross-component
// disagreement (here simulated by corrupting the in-memory stats).
func TestVerifyDetectsCountMismatch(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := LoadXML(dir, strings.NewReader(samples.Bibliography), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.total += 3
	r := db.Verify(false)
	if r.OK() {
		t.Error("quick verify missed a stats total mismatch")
	}
}

// TestVerifyBrokenStoreRefuses: a store stuck in a failed update reports
// that and skips further checks (its in-memory state is unreliable).
func TestVerifyBrokenStoreRefuses(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := LoadXML(dir, strings.NewReader(samples.Bibliography), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.broken = true
	r := db.Verify(true)
	if r.OK() {
		t.Error("verify passed a broken store")
	}
	if r.PagesChecked != 0 {
		t.Error("verify kept checking a broken store")
	}
}

func TestVerifyPagesHelperSeesAllPages(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := LoadXML(dir, strings.NewReader(samples.Bibliography), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	n, err := db.treeFile.VerifyPages(func(id pager.PageID, err error) {
		t.Errorf("page %d: %v", id, err)
	})
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 {
		t.Errorf("tree file has only %d pages", n)
	}
}
