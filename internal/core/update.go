package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"path/filepath"

	"nok/internal/btree"
	"nok/internal/dewey"
	"nok/internal/pager"
	"nok/internal/stats"
	"nok/internal/stree"
	"nok/internal/symtab"
	"nok/internal/vfs"
	"nok/internal/vstore"
)

// This file implements document updates at the database level. The string
// tree itself updates locally (§4.2), but both multi-valued indexes and
// the Dewey index carry physical positions, which shift wholesale when
// tokens move; as the paper concedes, "due to the nature of Dewey IDs, the
// node ID B+ tree may need to be reconstructed if many IDs have been
// updated". We reconstruct the three B+ trees after every fragment-level
// update: value data stays in place (the data file is append-only), the
// dewey→value association is carried over in memory, and a single scan of
// the updated string tree rebuilds the position-bearing entries.
//
// Every update is one atomic commit that never blocks readers (MVCC via
// shadow paging, see internal/pager/versions.go and snapshot.go):
//
//  1. A copy-on-write transaction opens on tree.pg; the first write to a
//     committed page relocates it to a fresh physical page, so every page
//     the current epoch references stays byte-identical on disk.
//  2. The mutation runs against a writer clone of the current snapshot's
//     tree; concurrent readers keep evaluating on their pinned views.
//  3. The indexes, symbols, statistics and synopsis are rebuilt into
//     fresh epoch-named files; the previous epoch's files are untouched.
//  4. Commit: fsync everything, write the new epoch's page-table sidecar
//     (treemap), then atomically replace the MANIFEST — the commit point.
//     A crash anywhere before it leaves the old epoch fully intact; no
//     undo journal exists or is needed.
//  5. The new Snapshot is published with one pointer swap; the previous
//     view is garbage-collected when its last reader releases it (its
//     private tree pages recycle, its superseded files are deleted).
//
// An in-process failure before the commit point aborts cleanly — the
// copy-on-write pages are recycled and the store stays usable. Only a
// failure *after* the manifest switch marks the DB broken
// (ErrNeedsRecovery): disk is committed but memory may not match; reopen
// to roll forward.

// ErrNeedsRecovery is returned by mutations after a previous update
// failed at (or beyond) its commit point; reopen the store to recover.
var ErrNeedsRecovery = errors.New("core: store needs recovery (a previous update failed); reopen to recover")

// InsertFragment parses an XML fragment and appends it as the last
// child(ren) of the node identified by parent. The fragment must contain
// exactly one root element. Indexes are rebuilt afterwards. It is the
// single-fragment case of InsertFragmentBatch (append.go).
func (db *DB) InsertFragment(parent dewey.ID, r io.Reader) error {
	err := db.InsertFragmentBatch(parent, []io.Reader{r})
	var fe *FragmentError
	if errors.As(err, &fe) {
		return fe.Err // a one-fragment batch has only one possible offender
	}
	return err
}

// DeleteSubtree removes the node with the given ID and its descendants.
// Following siblings are renumbered (their Dewey ordinals shift down by
// one), and indexes are rebuilt.
func (db *DB) DeleteSubtree(id dewey.ID) error {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	if db.closed.Load() {
		return ErrClosed
	}
	if db.broken {
		return ErrNeedsRecovery
	}
	pos, _, found, err := db.NodeAt(id)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("core: no node with ID %s", id)
	}
	carried, err := db.valueAssociations(id, id[len(id)-1])
	if err != nil {
		return err
	}
	// A delete interns nothing, so the new epoch shares the committed
	// symbol table (tables are immutable once committed). Tag counts and
	// total are re-derived by the rebuild scan (a delete's synopsis delta
	// is not collectible from the parse, so no precomputed synopsis).
	return db.applyUpdate(db.Tags, carried, nil, func(t *stree.Store) error {
		return t.DeleteSubtree(pos)
	})
}

// applyUpdate runs mutate (the string-tree change) against a writer clone
// of the current snapshot inside a copy-on-write transaction, rebuilds the
// derived files into a new Snapshot, and commits by switching the manifest
// to the new epoch. Readers keep evaluating on their pinned views
// throughout. preSyn, when non-nil, is an incrementally merged synopsis
// (stats.Merge of the committed synopsis and the mutation's delta) that
// replaces the rebuild scan's statistics collection; it must not be shared
// with readers, as the commit stamps it. Caller holds wmu.
func (db *DB) applyUpdate(newTags *symtab.Table, carried map[string]uint64, preSyn *stats.Synopsis, mutate func(t *stree.Store) error) error {
	cur := db.Snapshot
	newEpoch := cur.epoch + 1
	if err := db.treeFile.BeginCOW(newEpoch); err != nil {
		return err
	}
	wtree := cur.Tree.WriterClone(db.treeFile)
	if err := mutate(wtree); err != nil {
		return db.abortUpdate(newEpoch, err)
	}
	next := &Snapshot{
		db:       db,
		epoch:    newEpoch,
		Tags:     newTags,
		Values:   db.Values,
		tagCount: make(map[symtab.Sym]uint64),
	}
	if err := db.rebuildIndexes(next, wtree, carried, preSyn); err != nil {
		next.closeFiles()
		return db.abortUpdate(newEpoch, err)
	}
	committed, err := db.commitEpoch(next, wtree)
	if err != nil {
		if !committed {
			next.closeFiles()
			return db.abortUpdate(newEpoch, err)
		}
		// Disk holds the new epoch but memory no longer matches it.
		db.broken = true
		return err
	}
	return nil
}

// abortUpdate rolls an uncommitted update back: the copy-on-write pages
// recycle, the fresh epoch-named files are deleted, and the store stays
// fully usable on the old epoch. Only an abort failure (the transaction's
// state can no longer be trusted) marks the DB broken.
func (db *DB) abortUpdate(newEpoch uint64, cause error) error {
	for _, role := range []string{roleTags, roleStats, roleSynopsis, roleTagIdx, roleValIdx, roleDewIdx, rolePathIdx, roleTreeMap} {
		_ = db.fsys.Remove(db.join(epochFileName(role, newEpoch)))
	}
	if err := db.treeFile.AbortCOW(); err != nil {
		db.broken = true
		return errors.Join(cause, fmt.Errorf("core: aborting update: %w", err))
	}
	return cause
}

// commitEpoch makes every file durable, writes the new epoch's page-table
// sidecar, switches the MANIFEST (the commit point), and publishes the new
// Snapshot. The previous view is retired: it keeps serving its pinned
// readers and is destroyed — files deleted, pages recycled — when the last
// one releases. committed reports whether the commit point was passed;
// when false the caller can still abort cleanly.
func (db *DB) commitEpoch(next *Snapshot, wtree *stree.Store) (committed bool, err error) {
	newEpoch := next.epoch
	names := map[string]string{
		roleTree:     fileTree,
		roleValues:   fileValues,
		roleTreeMap:  epochFileName(roleTreeMap, newEpoch),
		roleTags:     epochFileName(roleTags, newEpoch),
		roleStats:    epochFileName(roleStats, newEpoch),
		roleSynopsis: epochFileName(roleSynopsis, newEpoch),
		roleTagIdx:   epochFileName(roleTagIdx, newEpoch),
		roleValIdx:   epochFileName(roleValIdx, newEpoch),
		roleDewIdx:   epochFileName(roleDewIdx, newEpoch),
		rolePathIdx:  epochFileName(rolePathIdx, newEpoch),
	}
	if err := db.Values.Flush(); err != nil {
		return false, err
	}
	// Seal flushes and fsyncs every copy-on-write page, then serializes
	// the new logical→physical table.
	side, err := db.treeFile.SealCOW()
	if err != nil {
		return false, err
	}
	if err := vfs.WriteFileAtomic(db.fsys, db.join(names[roleTreeMap]), side, 0o644); err != nil {
		return false, err
	}
	m, err := buildManifest(db.fsys, db.dir, newEpoch, names)
	if err != nil {
		return false, err
	}
	if err := writeManifest(db.fsys, db.dir, m); err != nil {
		return false, err
	}
	// Committed on disk. Publish the page-table version and pin it for
	// the new snapshot; failures past this point leave disk ahead of
	// memory (the caller marks the DB broken).
	if _, err := db.treeFile.Publish(); err != nil {
		return true, err
	}
	psn, err := db.treeFile.Acquire()
	if err != nil {
		return true, err
	}
	next.psn = psn
	next.Tree = wtree.Snapshot(psn)

	// Hand the set of superseded files to the retiring view; they are
	// deleted when its last reader drains, not before.
	prev := db.Snapshot
	for role, newName := range names {
		if old := db.manifest.Files[role].Name; old != "" && old != newName {
			prev.obsolete = append(prev.obsolete, old)
		}
	}
	db.Snapshot = next
	db.manifest = m
	next.publish()
	prev.Release() // drop the DB's "current" reference on the old view
	return true, nil
}

// countChildren counts the children of the node at pos via navigation.
func (db *DB) countChildren(pos stree.Pos) (uint32, error) {
	c, ok, err := db.Tree.FirstChild(pos)
	if err != nil {
		return 0, err
	}
	var n uint32
	for ok {
		n++
		c, ok, err = db.Tree.FollowingSibling(c)
		if err != nil {
			return 0, err
		}
	}
	return n, nil
}

// valueAssociations snapshots dewey→valueOffset for every node, applying
// the delete remapping when deletedID is non-nil: nodes inside the deleted
// subtree are dropped, and siblings after it (and their descendants) shift
// one ordinal down at the deleted depth.
func (db *DB) valueAssociations(deletedID dewey.ID, deletedOrd uint32) (map[string]uint64, error) {
	out := map[string]uint64{}
	it := db.DeweyIdx.First()
	for it.Next() {
		id, err := dewey.FromBytes(it.Key())
		if err != nil {
			return nil, err
		}
		if len(it.Value()) != 14 {
			return nil, errors.New("core: corrupt dewey index entry")
		}
		valOff := binary.BigEndian.Uint64(it.Value()[6:14])
		if valOff == NoValue {
			continue
		}
		if deletedID != nil {
			if deletedID.IsAncestorOf(id) || dewey.Compare(deletedID, id) == 0 {
				continue // inside the deleted subtree
			}
			// Shift siblings after the deleted node (prefix-preserving).
			d := len(deletedID) - 1
			if len(id) > d && prefixEq(id, deletedID, d) && id[d] > deletedOrd {
				id = id.Clone()
				id[d]--
			}
		}
		out[id.String()] = valOff
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func prefixEq(id, other dewey.ID, n int) bool {
	for i := 0; i < n; i++ {
		if id[i] != other[i] {
			return false
		}
	}
	return true
}

// rebuildIndexes recreates the four B+ trees (and the symbol/statistics/
// synopsis files) from a scan of the already-mutated writer tree into
// fresh files named for next.epoch, filling next's in-memory state. The
// previous epoch's files and open handles are untouched — they remain the
// committed state readers are using. valOffByDewey carries the value
// associations. When preSyn is non-nil it is stamped with the new epoch
// and committed as the synopsis, and the scan skips statistics
// collection; otherwise the synopsis is rebuilt from the scan.
func (db *DB) rebuildIndexes(next *Snapshot, wtree *stree.Store, valOffByDewey map[string]uint64, preSyn *stats.Synopsis) error {
	newEpoch := next.epoch
	pageSize := db.treeFile.PageSize()
	if pageSize < 1024 {
		pageSize = pager.DefaultPageSize
	}
	idxOpts := func() *pager.Options { return &pager.Options{PageSize: pageSize, FS: db.fsys} }
	var err error
	if next.tagIdxFile, err = pager.Create(db.join(epochFileName(roleTagIdx, newEpoch)), idxOpts()); err != nil {
		return err
	}
	if next.TagIdx, err = btree.Create(next.tagIdxFile); err != nil {
		return err
	}
	if next.valIdxFile, err = pager.Create(db.join(epochFileName(roleValIdx, newEpoch)), idxOpts()); err != nil {
		return err
	}
	if next.ValIdx, err = btree.Create(next.valIdxFile); err != nil {
		return err
	}
	if next.dewIdxFile, err = pager.Create(db.join(epochFileName(roleDewIdx, newEpoch)), idxOpts()); err != nil {
		return err
	}
	if next.DeweyIdx, err = btree.Create(next.dewIdxFile); err != nil {
		return err
	}
	if next.pathIdxFile, err = pager.Create(db.join(epochFileName(rolePathIdx, newEpoch)), idxOpts()); err != nil {
		return err
	}
	if next.PathIdx, err = btree.Create(next.pathIdxFile); err != nil {
		return err
	}

	var sb *stats.Builder
	if preSyn == nil {
		sb = stats.NewBuilder()
	}
	// hashStack[d] is the path hash of the current open element at depth d
	// (root depth 1); hashStack[0] is the seed.
	hashStack := []uint64{pathHashSeed}
	var scanErr error
	err = wtree.Scan(func(pos stree.Pos, sym symtab.Sym, level int, id dewey.ID) bool {
		next.tagCount[sym]++
		next.total++
		if sb != nil {
			sb.Node(sym, level)
		}
		h := extendPathHash(hashStack[level-1], sym)
		hashStack = append(hashStack[:level], h)
		if err := next.PathIdx.Insert(pathKey(h, id), encodePos(pos)); err != nil {
			scanErr = err
			return false
		}
		if err := next.TagIdx.Insert(tagKey(sym, id), encodePos(pos)); err != nil {
			scanErr = err
			return false
		}
		valOff := NoValue
		if off, ok := valOffByDewey[id.String()]; ok {
			valOff = off
			v, err := db.Values.Get(int64(off))
			if err != nil {
				scanErr = err
				return false
			}
			if sb != nil {
				sb.Value(level, vstore.Hash(v))
			}
			if err := next.ValIdx.Insert(valKey(vstore.Hash(v), id), encodePos(pos)); err != nil {
				scanErr = err
				return false
			}
		}
		if err := next.DeweyIdx.Insert(id.Bytes(), deweyVal(pos, valOff)); err != nil {
			scanErr = err
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	if scanErr != nil {
		return scanErr
	}
	if err := saveStatsFile(db.fsys, filepath.Join(db.dir, epochFileName(roleStats, newEpoch)), next.Tags, next.tagCount, next.total); err != nil {
		return err
	}
	if err := next.Tags.SaveFS(db.fsys, filepath.Join(db.dir, epochFileName(roleTags, newEpoch))); err != nil {
		return err
	}
	var syn *stats.Synopsis
	if preSyn != nil {
		preSyn.Epoch = newEpoch
		preSyn.TreePages = uint64(wtree.NumPages())
		syn = preSyn
	} else {
		syn = sb.Finish(newEpoch, uint64(wtree.NumPages()))
	}
	if err := vfs.WriteFileAtomic(db.fsys,
		filepath.Join(db.dir, epochFileName(roleSynopsis, newEpoch)), stats.Encode(syn), 0o644); err != nil {
		return err
	}
	next.syn.Store(syn)
	for _, t := range []*btree.Tree{next.TagIdx, next.ValIdx, next.DeweyIdx, next.PathIdx} {
		if err := t.Flush(); err != nil {
			return err
		}
	}
	return db.Values.Flush()
}
