package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"strings"

	"nok/internal/btree"
	"nok/internal/dewey"
	"nok/internal/pager"
	"nok/internal/sax"
	"nok/internal/stats"
	"nok/internal/stree"
	"nok/internal/symtab"
	"nok/internal/vfs"
	"nok/internal/vstore"
)

// This file implements document updates at the database level. The string
// tree itself updates locally (§4.2), but both multi-valued indexes and
// the Dewey index carry physical positions, which shift wholesale when
// tokens move; as the paper concedes, "due to the nature of Dewey IDs, the
// node ID B+ tree may need to be reconstructed if many IDs have been
// updated". We reconstruct the three B+ trees after every fragment-level
// update: value data stays in place (the data file is append-only), the
// dewey→value association is carried over in memory, and a single scan of
// the updated string tree rebuilds the position-bearing entries.
//
// Every update is one atomic commit (see manifest.go): the string tree is
// mutated under the pager's undo journal tagged with the new epoch, the
// indexes/symbols/stats are rebuilt into fresh epoch-named files, and the
// manifest switch is the commit point. A crash anywhere leaves a store
// that Open rolls back to the pre-update state or forward to the committed
// one — never anything in between. An in-process failure mid-mutation
// marks the DB broken (ErrNeedsRecovery): the journal stays on disk and
// the next Open rolls back.

// ErrNeedsRecovery is returned by mutations after a previous update failed
// midway; reopen the store to roll back to the last committed state.
var ErrNeedsRecovery = errors.New("core: store needs recovery (a previous update failed); reopen to roll back")

// InsertFragment parses an XML fragment and appends it as the last
// child(ren) of the node identified by parent. The fragment must contain
// exactly one root element. Indexes are rebuilt afterwards.
func (db *DB) InsertFragment(parent dewey.ID, r io.Reader) error {
	if db.broken {
		return ErrNeedsRecovery
	}
	pos, _, found, err := db.NodeAt(parent)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("core: no node with ID %s", parent)
	}

	// The new subtree's Dewey IDs start at the parent's current child
	// count plus one; count children by navigation.
	kids, err := db.countChildren(pos)
	if err != nil {
		return err
	}

	// Parse the fragment: build the token string and collect values keyed
	// by the Dewey IDs the new nodes will have.
	var enc stree.SubtreeEncoder
	valueAt := map[string]uint64{}
	type open struct {
		id   dewey.ID
		text strings.Builder
		kids uint32
	}
	var stack []*open
	rootSeen := false
	sc := sax.NewScanner(r)
	openElem := func(name string) error {
		sym, err := db.Tags.Intern(name)
		if err != nil {
			return err
		}
		if err := enc.Open(sym); err != nil {
			return err
		}
		var id dewey.ID
		if len(stack) == 0 {
			if rootSeen {
				return errors.New("core: fragment must have a single root element")
			}
			rootSeen = true
			id = parent.Child(kids + 1)
		} else {
			p := stack[len(stack)-1]
			p.kids++
			id = p.id.Child(p.kids)
		}
		db.tagCount[sym]++
		db.total++
		stack = append(stack, &open{id: id})
		return nil
	}
	closeElem := func(trim bool) error {
		if err := enc.Close(); err != nil {
			return err
		}
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		text := e.text.String()
		if trim {
			text = strings.TrimSpace(text)
		}
		if text != "" {
			off, err := db.Values.Append([]byte(text))
			if err != nil {
				return err
			}
			valueAt[e.id.String()] = uint64(off)
		}
		return nil
	}
	for {
		ev, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		switch ev.Kind {
		case sax.StartElement:
			if err := openElem(ev.Name); err != nil {
				return err
			}
			for _, a := range ev.Attrs {
				if err := openElem(symtab.AttrPrefix + a.Name); err != nil {
					return err
				}
				stack[len(stack)-1].text.WriteString(a.Value)
				if err := closeElem(false); err != nil {
					return err
				}
			}
		case sax.EndElement:
			if err := closeElem(true); err != nil {
				return err
			}
		case sax.Text:
			if len(stack) > 0 {
				stack[len(stack)-1].text.WriteString(ev.Data)
			}
		}
	}
	tokens, err := enc.Bytes()
	if err != nil {
		return err
	}

	// Carry over existing dewey→value associations (appending as the last
	// child never renumbers existing nodes), add the new ones, then run
	// the mutation as one atomic commit.
	carried, err := db.valueAssociations(nil, 0)
	if err != nil {
		return err
	}
	for k, v := range valueAt {
		carried[k] = v
	}
	return db.applyUpdate(carried, func() error {
		return db.Tree.InsertChild(pos, tokens)
	})
}

// applyUpdate runs mutate (the in-place string-tree change) and the index
// rebuild as one undo-journaled transaction and commits it by switching
// the manifest to a new epoch. Any failure after mutation starts marks the
// DB broken: the journal stays behind and the next Open rolls back.
func (db *DB) applyUpdate(carried map[string]uint64, mutate func() error) error {
	newEpoch := db.epoch + 1
	if err := db.treeFile.BeginUpdate(newEpoch); err != nil {
		return err
	}
	if err := mutate(); err != nil {
		db.broken = true
		return err
	}
	syn, err := db.rebuildIndexes(carried, newEpoch)
	if err != nil {
		db.broken = true
		return err
	}
	if err := db.commitEpoch(newEpoch); err != nil {
		db.broken = true
		return err
	}
	// The rebuild scan refreshed the statistics synopsis alongside the
	// indexes, so the planner stays available across updates. Cached plans
	// were costed against the previous epoch's statistics; drop them.
	db.synopsis = syn
	db.invalidatePlans()
	return nil
}

// commitEpoch makes every file durable, writes the new manifest (the
// commit point), drops the undo journal, and sweeps the previous epoch's
// files.
func (db *DB) commitEpoch(newEpoch uint64) error {
	names := map[string]string{
		roleTree:     fileTree,
		roleValues:   fileValues,
		roleTags:     epochFileName(roleTags, newEpoch),
		roleStats:    epochFileName(roleStats, newEpoch),
		roleSynopsis: epochFileName(roleSynopsis, newEpoch),
		roleTagIdx:   epochFileName(roleTagIdx, newEpoch),
		roleValIdx:   epochFileName(roleValIdx, newEpoch),
		roleDewIdx:   epochFileName(roleDewIdx, newEpoch),
		rolePathIdx:  epochFileName(rolePathIdx, newEpoch),
	}
	if err := db.treeFile.Flush(); err != nil {
		return err
	}
	if err := db.Values.Flush(); err != nil {
		return err
	}
	m, err := buildManifest(db.fsys, db.dir, newEpoch, names)
	if err != nil {
		return err
	}
	if err := writeManifest(db.fsys, db.dir, m); err != nil {
		return err
	}
	// Committed. Remove the journal; from here recovery rolls forward.
	if err := db.treeFile.CommitUpdate(); err != nil {
		return err
	}
	// Best-effort sweep of the previous epoch's files — failures here are
	// harmless (Open's orphan sweep will finish the job). Iterate the new
	// name set rather than allRoles so the optional synopsis is swept too;
	// a pre-synopsis manifest simply has no old name for that role.
	for role, newName := range names {
		old := db.manifest.Files[role].Name
		if old != "" && old != newName {
			_ = db.fsys.Remove(filepath.Join(db.dir, old))
		}
	}
	db.manifest, db.epoch = m, newEpoch
	return nil
}

// DeleteSubtree removes the node with the given ID and its descendants.
// Following siblings are renumbered (their Dewey ordinals shift down by
// one), and indexes are rebuilt.
func (db *DB) DeleteSubtree(id dewey.ID) error {
	if db.broken {
		return ErrNeedsRecovery
	}
	pos, _, found, err := db.NodeAt(id)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("core: no node with ID %s", id)
	}
	carried, err := db.valueAssociations(id, id[len(id)-1])
	if err != nil {
		return err
	}
	// Tag counts and total are re-derived by the rebuild scan (the deleted
	// range's per-tag composition is easiest recomputed from the tree).
	return db.applyUpdate(carried, func() error {
		return db.Tree.DeleteSubtree(pos)
	})
}

// countChildren counts the children of the node at pos via navigation.
func (db *DB) countChildren(pos stree.Pos) (uint32, error) {
	c, ok, err := db.Tree.FirstChild(pos)
	if err != nil {
		return 0, err
	}
	var n uint32
	for ok {
		n++
		c, ok, err = db.Tree.FollowingSibling(c)
		if err != nil {
			return 0, err
		}
	}
	return n, nil
}

// valueAssociations snapshots dewey→valueOffset for every node, applying
// the delete remapping when deletedID is non-nil: nodes inside the deleted
// subtree are dropped, and siblings after it (and their descendants) shift
// one ordinal down at the deleted depth.
func (db *DB) valueAssociations(deletedID dewey.ID, deletedOrd uint32) (map[string]uint64, error) {
	out := map[string]uint64{}
	it := db.DeweyIdx.First()
	for it.Next() {
		id, err := dewey.FromBytes(it.Key())
		if err != nil {
			return nil, err
		}
		if len(it.Value()) != 14 {
			return nil, errors.New("core: corrupt dewey index entry")
		}
		valOff := binary.BigEndian.Uint64(it.Value()[6:14])
		if valOff == NoValue {
			continue
		}
		if deletedID != nil {
			if deletedID.IsAncestorOf(id) || dewey.Compare(deletedID, id) == 0 {
				continue // inside the deleted subtree
			}
			// Shift siblings after the deleted node (prefix-preserving).
			d := len(deletedID) - 1
			if len(id) > d && prefixEq(id, deletedID, d) && id[d] > deletedOrd {
				id = id.Clone()
				id[d]--
			}
		}
		out[id.String()] = valOff
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func prefixEq(id, other dewey.ID, n int) bool {
	for i := 0; i < n; i++ {
		if id[i] != other[i] {
			return false
		}
	}
	return true
}

// rebuildIndexes recreates the four B+ trees (and the symbol/statistics
// files) from a scan of the (already updated) string tree into fresh files
// named for newEpoch, and rebuilds the planner's statistics synopsis from
// the same scan (returned so the caller can install it once the commit
// lands). The previous epoch's files are left untouched — they remain the
// committed state until the manifest switches. valOffByDewey carries the
// value associations.
func (db *DB) rebuildIndexes(valOffByDewey map[string]uint64, newEpoch uint64) (*stats.Synopsis, error) {
	// Close the old index files; their on-disk bytes stay (still committed).
	for _, pf := range []*pager.File{db.tagIdxFile, db.valIdxFile, db.dewIdxFile, db.pathIdxFile} {
		if pf != nil {
			if err := pf.Close(); err != nil {
				return nil, err
			}
		}
	}
	pageSize := db.treeFile.PageSize()
	if pageSize < 1024 {
		pageSize = pager.DefaultPageSize
	}
	idxOpts := func() *pager.Options { return &pager.Options{PageSize: pageSize, FS: db.fsys} }
	var err error
	if db.tagIdxFile, err = pager.Create(filepath.Join(db.dir, epochFileName(roleTagIdx, newEpoch)), idxOpts()); err != nil {
		return nil, err
	}
	if db.TagIdx, err = btree.Create(db.tagIdxFile); err != nil {
		return nil, err
	}
	if db.valIdxFile, err = pager.Create(filepath.Join(db.dir, epochFileName(roleValIdx, newEpoch)), idxOpts()); err != nil {
		return nil, err
	}
	if db.ValIdx, err = btree.Create(db.valIdxFile); err != nil {
		return nil, err
	}
	if db.dewIdxFile, err = pager.Create(filepath.Join(db.dir, epochFileName(roleDewIdx, newEpoch)), idxOpts()); err != nil {
		return nil, err
	}
	if db.DeweyIdx, err = btree.Create(db.dewIdxFile); err != nil {
		return nil, err
	}
	if db.pathIdxFile, err = pager.Create(filepath.Join(db.dir, epochFileName(rolePathIdx, newEpoch)), idxOpts()); err != nil {
		return nil, err
	}
	if db.PathIdx, err = btree.Create(db.pathIdxFile); err != nil {
		return nil, err
	}

	db.tagCount = make(map[symtab.Sym]uint64)
	db.total = 0
	sb := stats.NewBuilder()
	// hashStack[d] is the path hash of the current open element at depth d
	// (root depth 1); hashStack[0] is the seed.
	hashStack := []uint64{pathHashSeed}
	var scanErr error
	err = db.Tree.Scan(func(pos stree.Pos, sym symtab.Sym, level int, id dewey.ID) bool {
		db.tagCount[sym]++
		db.total++
		sb.Node(sym, level)
		h := extendPathHash(hashStack[level-1], sym)
		hashStack = append(hashStack[:level], h)
		if err := db.PathIdx.Insert(pathKey(h, id), encodePos(pos)); err != nil {
			scanErr = err
			return false
		}
		if err := db.TagIdx.Insert(tagKey(sym, id), encodePos(pos)); err != nil {
			scanErr = err
			return false
		}
		valOff := NoValue
		if off, ok := valOffByDewey[id.String()]; ok {
			valOff = off
			v, err := db.Values.Get(int64(off))
			if err != nil {
				scanErr = err
				return false
			}
			sb.Value(level, vstore.Hash(v))
			if err := db.ValIdx.Insert(valKey(vstore.Hash(v), id), encodePos(pos)); err != nil {
				scanErr = err
				return false
			}
		}
		if err := db.DeweyIdx.Insert(id.Bytes(), deweyVal(pos, valOff)); err != nil {
			scanErr = err
			return false
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if scanErr != nil {
		return nil, scanErr
	}
	if err := db.saveStats(filepath.Join(db.dir, epochFileName(roleStats, newEpoch))); err != nil {
		return nil, err
	}
	if err := db.Tags.SaveFS(db.fsys, filepath.Join(db.dir, epochFileName(roleTags, newEpoch))); err != nil {
		return nil, err
	}
	syn := sb.Finish(newEpoch, uint64(db.Tree.NumPages()))
	if err := vfs.WriteFileAtomic(db.fsys,
		filepath.Join(db.dir, epochFileName(roleSynopsis, newEpoch)), stats.Encode(syn), 0o644); err != nil {
		return nil, err
	}
	for _, t := range []*btree.Tree{db.TagIdx, db.ValIdx, db.DeweyIdx, db.PathIdx} {
		if err := t.Flush(); err != nil {
			return nil, err
		}
	}
	return syn, db.Values.Flush()
}
