package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"nok/internal/btree"
	"nok/internal/dewey"
	"nok/internal/pager"
	"nok/internal/sax"
	"nok/internal/stree"
	"nok/internal/symtab"
	"nok/internal/vstore"
)

// This file implements document updates at the database level. The string
// tree itself updates locally (§4.2), but both multi-valued indexes and
// the Dewey index carry physical positions, which shift wholesale when
// tokens move; as the paper concedes, "due to the nature of Dewey IDs, the
// node ID B+ tree may need to be reconstructed if many IDs have been
// updated". We reconstruct the three B+ trees after every fragment-level
// update: value data stays in place (the data file is append-only), the
// dewey→value association is carried over in memory, and a single scan of
// the updated string tree rebuilds the position-bearing entries.

// InsertFragment parses an XML fragment and appends it as the last
// child(ren) of the node identified by parent. The fragment must contain
// exactly one root element. Indexes are rebuilt afterwards.
func (db *DB) InsertFragment(parent dewey.ID, r io.Reader) error {
	pos, _, found, err := db.NodeAt(parent)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("core: no node with ID %s", parent)
	}

	// The new subtree's Dewey IDs start at the parent's current child
	// count plus one; count children by navigation.
	kids, err := db.countChildren(pos)
	if err != nil {
		return err
	}

	// Parse the fragment: build the token string and collect values keyed
	// by the Dewey IDs the new nodes will have.
	var enc stree.SubtreeEncoder
	valueAt := map[string]uint64{}
	type open struct {
		id   dewey.ID
		text strings.Builder
		kids uint32
	}
	var stack []*open
	rootSeen := false
	sc := sax.NewScanner(r)
	openElem := func(name string) error {
		sym, err := db.Tags.Intern(name)
		if err != nil {
			return err
		}
		if err := enc.Open(sym); err != nil {
			return err
		}
		var id dewey.ID
		if len(stack) == 0 {
			if rootSeen {
				return errors.New("core: fragment must have a single root element")
			}
			rootSeen = true
			id = parent.Child(kids + 1)
		} else {
			p := stack[len(stack)-1]
			p.kids++
			id = p.id.Child(p.kids)
		}
		db.tagCount[sym]++
		db.total++
		stack = append(stack, &open{id: id})
		return nil
	}
	closeElem := func(trim bool) error {
		if err := enc.Close(); err != nil {
			return err
		}
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		text := e.text.String()
		if trim {
			text = strings.TrimSpace(text)
		}
		if text != "" {
			off, err := db.Values.Append([]byte(text))
			if err != nil {
				return err
			}
			valueAt[e.id.String()] = uint64(off)
		}
		return nil
	}
	for {
		ev, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		switch ev.Kind {
		case sax.StartElement:
			if err := openElem(ev.Name); err != nil {
				return err
			}
			for _, a := range ev.Attrs {
				if err := openElem(symtab.AttrPrefix + a.Name); err != nil {
					return err
				}
				stack[len(stack)-1].text.WriteString(a.Value)
				if err := closeElem(false); err != nil {
					return err
				}
			}
		case sax.EndElement:
			if err := closeElem(true); err != nil {
				return err
			}
		case sax.Text:
			if len(stack) > 0 {
				stack[len(stack)-1].text.WriteString(ev.Data)
			}
		}
	}
	tokens, err := enc.Bytes()
	if err != nil {
		return err
	}

	// Carry over existing dewey→value associations (appending as the last
	// child never renumbers existing nodes), add the new ones, update the
	// structure, and rebuild the indexes.
	carried, err := db.valueAssociations(nil, 0)
	if err != nil {
		return err
	}
	for k, v := range valueAt {
		carried[k] = v
	}
	if err := db.Tree.InsertChild(pos, tokens); err != nil {
		return err
	}
	return db.rebuildIndexes(carried)
}

// DeleteSubtree removes the node with the given ID and its descendants.
// Following siblings are renumbered (their Dewey ordinals shift down by
// one), and indexes are rebuilt.
func (db *DB) DeleteSubtree(id dewey.ID) error {
	pos, _, found, err := db.NodeAt(id)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("core: no node with ID %s", id)
	}
	carried, err := db.valueAssociations(id, id[len(id)-1])
	if err != nil {
		return err
	}
	if err := db.Tree.DeleteSubtree(pos); err != nil {
		return err
	}
	// Refresh tag counts and total from the structure (the deleted range's
	// per-tag composition is easiest re-derived by the rebuild scan).
	return db.rebuildIndexes(carried)
}

// countChildren counts the children of the node at pos via navigation.
func (db *DB) countChildren(pos stree.Pos) (uint32, error) {
	c, ok, err := db.Tree.FirstChild(pos)
	if err != nil {
		return 0, err
	}
	var n uint32
	for ok {
		n++
		c, ok, err = db.Tree.FollowingSibling(c)
		if err != nil {
			return 0, err
		}
	}
	return n, nil
}

// valueAssociations snapshots dewey→valueOffset for every node, applying
// the delete remapping when deletedID is non-nil: nodes inside the deleted
// subtree are dropped, and siblings after it (and their descendants) shift
// one ordinal down at the deleted depth.
func (db *DB) valueAssociations(deletedID dewey.ID, deletedOrd uint32) (map[string]uint64, error) {
	out := map[string]uint64{}
	it := db.DeweyIdx.First()
	for it.Next() {
		id, err := dewey.FromBytes(it.Key())
		if err != nil {
			return nil, err
		}
		if len(it.Value()) != 14 {
			return nil, errors.New("core: corrupt dewey index entry")
		}
		valOff := binary.BigEndian.Uint64(it.Value()[6:14])
		if valOff == NoValue {
			continue
		}
		if deletedID != nil {
			if deletedID.IsAncestorOf(id) || dewey.Compare(deletedID, id) == 0 {
				continue // inside the deleted subtree
			}
			// Shift siblings after the deleted node (prefix-preserving).
			d := len(deletedID) - 1
			if len(id) > d && prefixEq(id, deletedID, d) && id[d] > deletedOrd {
				id = id.Clone()
				id[d]--
			}
		}
		out[id.String()] = valOff
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func prefixEq(id, other dewey.ID, n int) bool {
	for i := 0; i < n; i++ {
		if id[i] != other[i] {
			return false
		}
	}
	return true
}

// rebuildIndexes recreates the three B+ trees from a scan of the (already
// updated) string tree. valOffByDewey carries the value associations.
func (db *DB) rebuildIndexes(valOffByDewey map[string]uint64) error {
	// Close and remove the old index files.
	for _, pf := range []*pager.File{db.tagIdxFile, db.valIdxFile, db.dewIdxFile, db.pathIdxFile} {
		if pf != nil {
			if err := pf.Close(); err != nil {
				return err
			}
			if err := os.Remove(pf.Path()); err != nil {
				return err
			}
		}
	}
	pageSize := db.treeFile.PageSize()
	if pageSize < 1024 {
		pageSize = pager.DefaultPageSize
	}
	var err error
	if db.tagIdxFile, err = pager.Create(filepath.Join(db.dir, fileTagIdx), &pager.Options{PageSize: pageSize}); err != nil {
		return err
	}
	if db.TagIdx, err = btree.Create(db.tagIdxFile); err != nil {
		return err
	}
	if db.valIdxFile, err = pager.Create(filepath.Join(db.dir, fileValIdx), &pager.Options{PageSize: pageSize}); err != nil {
		return err
	}
	if db.ValIdx, err = btree.Create(db.valIdxFile); err != nil {
		return err
	}
	if db.dewIdxFile, err = pager.Create(filepath.Join(db.dir, fileDewIdx), &pager.Options{PageSize: pageSize}); err != nil {
		return err
	}
	if db.DeweyIdx, err = btree.Create(db.dewIdxFile); err != nil {
		return err
	}
	if db.pathIdxFile, err = pager.Create(filepath.Join(db.dir, filePathIdx), &pager.Options{PageSize: pageSize}); err != nil {
		return err
	}
	if db.PathIdx, err = btree.Create(db.pathIdxFile); err != nil {
		return err
	}

	db.tagCount = make(map[symtab.Sym]uint64)
	db.total = 0
	// hashStack[d] is the path hash of the current open element at depth d
	// (root depth 1); hashStack[0] is the seed.
	hashStack := []uint64{pathHashSeed}
	var scanErr error
	err = db.Tree.Scan(func(pos stree.Pos, sym symtab.Sym, level int, id dewey.ID) bool {
		db.tagCount[sym]++
		db.total++
		h := extendPathHash(hashStack[level-1], sym)
		hashStack = append(hashStack[:level], h)
		if err := db.PathIdx.Insert(pathKey(h, id), encodePos(pos)); err != nil {
			scanErr = err
			return false
		}
		if err := db.TagIdx.Insert(tagKey(sym, id), encodePos(pos)); err != nil {
			scanErr = err
			return false
		}
		valOff := NoValue
		if off, ok := valOffByDewey[id.String()]; ok {
			valOff = off
			v, err := db.Values.Get(int64(off))
			if err != nil {
				scanErr = err
				return false
			}
			if err := db.ValIdx.Insert(valKey(vstore.Hash(v), id), encodePos(pos)); err != nil {
				scanErr = err
				return false
			}
		}
		if err := db.DeweyIdx.Insert(id.Bytes(), deweyVal(pos, valOff)); err != nil {
			scanErr = err
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	if scanErr != nil {
		return scanErr
	}
	if err := db.saveStats(); err != nil {
		return err
	}
	if err := db.Tags.Save(filepath.Join(db.dir, fileTags)); err != nil {
		return err
	}
	for _, t := range []*btree.Tree{db.TagIdx, db.ValIdx, db.DeweyIdx, db.PathIdx} {
		if err := t.Flush(); err != nil {
			return err
		}
	}
	return db.Values.Flush()
}
