package core

import (
	"nok/internal/dewey"
	"nok/internal/pattern"
	"nok/internal/stree"
)

// topAnchor finds the anchor of the top partition: the deepest pattern
// node reachable from the virtual root through a pure chain — each node
// has exactly one child edge, that edge is a child ('/') edge, and the
// node carries no value constraint, is not the returning node and sources
// no structural-join link. The anchor dominates every remaining constraint,
// so evaluation can start at anchor candidates instead of the document
// root.
//
// chainTests lists the tag tests of the anchor's ancestors (depth 1 up to
// the anchor's parent). A nil anchor means the chain is empty (the pattern
// begins with '//'), and the caller falls back to virtual-root matching.
func topAnchor(top *pattern.NoKTree, t *pattern.Tree) (*pattern.Node, []string) {
	cur := t.Root
	var tests []string
	for {
		if len(cur.Children) != 1 {
			break
		}
		e := cur.Children[0]
		if e.Axis != pattern.Child {
			break
		}
		next := e.To
		if !cur.IsVirtualRoot() {
			tests = append(tests, cur.Test)
		}
		cur = next
		if cur == t.Return || cur.HasValueConstraint() || len(cur.PrecededBy) > 0 {
			break
		}
		// Link sources must stay at or below the anchor; stop descending
		// past a node with a global edge.
		hasGlobal := false
		for _, ce := range cur.Children {
			if !ce.Axis.Local() {
				hasGlobal = true
			}
		}
		if hasGlobal {
			break
		}
	}
	if cur.IsVirtualRoot() {
		return nil, nil
	}
	return cur, tests
}

// anchoredStarts locates candidates for the anchor node of the top
// partition: index-driven starts for the anchor's local subtree, filtered
// to the anchor's exact depth and verified against the ancestor tag chain
// through Dewey-prefix lookups. The returned strategy is the one actually
// used (a forced or planned path-index that cannot apply degrades and
// reports its fallback).
func (db *Snapshot) anchoredStarts(top *pattern.NoKTree, anchor *pattern.Node, chainTests []string, strat Strategy, nc *stree.NavCounters) ([]Match, Strategy, error) {
	synth := &pattern.NoKTree{Root: anchor}

	// The path index (§8 extension) resolves the whole ancestor chain in
	// one probe. It is used when forced (directly or by the planner), and
	// under the auto heuristic when no equality value constraint is
	// available (the paper's rule puts the value index first) and the chain
	// is at least two steps of concrete tags (a one-step path is just the
	// tag index).
	tryPath := strat == StrategyPathIndex
	if strat == StrategyAuto && len(chainTests) >= 1 {
		if _, hasVal := db.bestValueConstraint(synth); !hasVal {
			tryPath = true
		}
	}
	if tryPath {
		ms, ok, err := db.startsByPath(anchor, chainTests, nc)
		if err != nil {
			return nil, StrategyPathIndex, err
		}
		if ok {
			return ms, StrategyPathIndex, nil
		}
		// Wildcards or unknown tags in the chain: fall back.
		strat = StrategyAuto
	}
	if strat == StrategyPathIndex {
		strat = StrategyAuto
	}

	raw, used, err := db.starts(synth, strat, nc)
	if err != nil {
		return nil, used, err
	}
	depth := len(chainTests) + 1
	var out []Match
	for _, m := range raw {
		if len(m.ID) != depth {
			continue
		}
		ok, err := db.ancestorsMatch(m.ID, chainTests, nc)
		if err != nil {
			return nil, used, err
		}
		if ok {
			out = append(out, m)
		}
	}
	return out, used, nil
}

// ancestorsMatch verifies that the tags on the path above id match the
// chain tests (depth 1 first). Wildcard tests skip the lookup.
func (db *Snapshot) ancestorsMatch(id dewey.ID, tests []string, nc *stree.NavCounters) (bool, error) {
	for j, test := range tests {
		if test == "*" {
			continue
		}
		want, ok := db.Tags.Lookup(test)
		if !ok {
			return false, nil
		}
		pos, _, found, err := db.nodeAtCounted(id[:j+1], nc)
		if err != nil {
			return false, err
		}
		if !found {
			return false, nil
		}
		nc.AddExamined(1) // SymAt touches one tree page
		sym, err := db.Tree.SymAt(pos)
		if err != nil {
			return false, err
		}
		if sym != want {
			return false, nil
		}
	}
	return true, nil
}
