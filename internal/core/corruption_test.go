package core

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nok/internal/pager"
	"nok/internal/samples"
	"nok/internal/vfs"
	"nok/internal/vstore"
)

// buildDir loads the bibliography into a fresh directory and closes it.
func buildDir(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "db")
	db, err := LoadXML(dir, strings.NewReader(samples.Bibliography), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// storeFiles resolves the store's physical file name for every manifest
// role (names are epoch-suffixed for the rebuilt-on-update files).
func storeFiles(t *testing.T, dir string) map[string]string {
	t.Helper()
	m, err := readManifest(vfs.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string, len(m.Files))
	for role, rec := range m.Files {
		out[role] = rec.Name
	}
	return out
}

// TestOpenFailsCleanlyOnCorruption damages each store file in turn; Open
// (or the first query) must return an error, never panic, and never
// return wrong data silently for structural corruption.
func TestOpenFailsCleanlyOnCorruption(t *testing.T) {
	for _, role := range allRoles {
		role := role
		t.Run("truncate-"+role, func(t *testing.T) {
			dir := buildDir(t)
			path := filepath.Join(dir, storeFiles(t, dir)[role])
			if err := os.Truncate(path, 3); err != nil {
				t.Fatal(err)
			}
			db, err := Open(dir, nil)
			if err == nil {
				// Some truncations only surface at query time; that is
				// acceptable as long as it is an error, not a panic.
				defer db.Close()
				_, _, qerr := db.Query(samples.PaperQuery, nil)
				if qerr == nil {
					t.Errorf("truncated %s: no error surfaced", role)
				}
				return
			}
			if !errors.Is(err, ErrTruncatedFile) {
				t.Logf("truncated %s: err = %v (not ErrTruncatedFile, acceptable if typed elsewhere)", role, err)
			}
		})
		t.Run("missing-"+role, func(t *testing.T) {
			dir := buildDir(t)
			if err := os.Remove(filepath.Join(dir, storeFiles(t, dir)[role])); err != nil {
				t.Fatal(err)
			}
			db, err := Open(dir, nil)
			if err == nil {
				db.Close()
				t.Fatalf("missing %s: Open succeeded", role)
			}
			if !errors.Is(err, ErrMissingFile) && !errors.Is(err, os.ErrNotExist) {
				t.Errorf("missing %s: err = %v, want ErrMissingFile", role, err)
			}
		})
	}
}

// TestOpenCorruptedFixtures is the satellite fixture table: each named
// corruption must fail Open (or Verify) with a typed, actionable error.
func TestOpenCorruptedFixtures(t *testing.T) {
	type fixture struct {
		name    string
		corrupt func(t *testing.T, dir string)
		wantErr []error // any match passes (errors.Is)
	}
	fixtures := []fixture{
		{
			name: "truncated-pager-file",
			corrupt: func(t *testing.T, dir string) {
				// Cut the tree file below its committed length.
				path := filepath.Join(dir, storeFiles(t, dir)[roleTree])
				fi, err := os.Stat(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.Truncate(path, fi.Size()/2); err != nil {
					t.Fatal(err)
				}
			},
			wantErr: []error{ErrTruncatedFile},
		},
		{
			name: "flipped-byte-in-page-body",
			corrupt: func(t *testing.T, dir string) {
				path := filepath.Join(dir, storeFiles(t, dir)[roleTree])
				raw, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				// Flip one byte inside the first data page's payload.
				pos := pager.DefaultPageSize + pager.TrailerLen + 7
				if pos >= len(raw) {
					t.Fatalf("tree file only %d bytes", len(raw))
				}
				raw[pos] ^= 0xFF
				if err := os.WriteFile(path, raw, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantErr: []error{pager.ErrChecksum},
		},
		{
			name: "stale-manifest",
			corrupt: func(t *testing.T, dir string) {
				// Keep an old manifest while the files move on: point the
				// manifest at an epoch whose files were swept.
				m, err := readManifest(vfs.OS, dir)
				if err != nil {
					t.Fatal(err)
				}
				m.Epoch++
				for _, role := range []string{roleTags, roleStats, roleTagIdx, roleValIdx, roleDewIdx, rolePathIdx} {
					rec := m.Files[role]
					rec.Name = epochFileName(role, m.Epoch)
					m.Files[role] = rec
				}
				if err := writeManifest(vfs.OS, dir, m); err != nil {
					t.Fatal(err)
				}
			},
			wantErr: []error{ErrMissingFile},
		},
		{
			name: "missing-value-file",
			corrupt: func(t *testing.T, dir string) {
				if err := os.Remove(filepath.Join(dir, storeFiles(t, dir)[roleValues])); err != nil {
					t.Fatal(err)
				}
			},
			wantErr: []error{ErrMissingFile},
		},
		{
			name: "corrupt-manifest",
			corrupt: func(t *testing.T, dir string) {
				path := filepath.Join(dir, ManifestName)
				raw, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				raw[len(raw)/2] ^= 0xFF
				if err := os.WriteFile(path, raw, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantErr: []error{ErrManifestCorrupt},
		},
		{
			name: "no-manifest",
			corrupt: func(t *testing.T, dir string) {
				if err := os.Remove(filepath.Join(dir, ManifestName)); err != nil {
					t.Fatal(err)
				}
			},
			wantErr: []error{ErrNoManifest},
		},
		{
			name: "corrupt-value-header",
			corrupt: func(t *testing.T, dir string) {
				path := filepath.Join(dir, storeFiles(t, dir)[roleValues])
				f, err := os.OpenFile(path, os.O_RDWR, 0)
				if err != nil {
					t.Fatal(err)
				}
				defer f.Close()
				if _, err := f.WriteAt([]byte{0xDE, 0xAD}, 4); err != nil {
					t.Fatal(err)
				}
			},
			wantErr: []error{vstore.ErrBadHeader},
		},
	}
	for _, fx := range fixtures {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			dir := buildDir(t)
			fx.corrupt(t, dir)
			db, err := Open(dir, nil)
			if err == nil {
				db.Close()
				t.Fatalf("%s: Open succeeded", fx.name)
			}
			for _, want := range fx.wantErr {
				if errors.Is(err, want) {
					return
				}
			}
			t.Errorf("%s: err = %v, want one of %v", fx.name, err, fx.wantErr)
		})
	}
}

func TestGarbageOverwrite(t *testing.T) {
	for _, role := range []string{roleTree, roleTagIdx} {
		role := role
		t.Run(role, func(t *testing.T) {
			dir := buildDir(t)
			name := storeFiles(t, dir)[role]
			if err := os.WriteFile(filepath.Join(dir, name),
				[]byte(strings.Repeat("garbage!", 512)), 0o644); err != nil {
				t.Fatal(err)
			}
			if db, err := Open(dir, nil); err == nil {
				db.Close()
				t.Errorf("garbage %s accepted by Open", name)
			}
		})
	}
}

// TestMissingValuesFile: values.dat holds content only; opening without it
// must fail (it is part of the store's contract).
func TestMissingValuesFile(t *testing.T) {
	dir := buildDir(t)
	if err := os.Remove(filepath.Join(dir, "values.dat")); err != nil {
		t.Fatal(err)
	}
	if db, err := Open(dir, nil); err == nil {
		db.Close()
		t.Error("missing values.dat: Open succeeded")
	}
}

// TestRecoveryAfterFailedUpdate: a mid-update failure leaves a journal;
// reopening rolls back to the committed pre-update state.
func TestUpdateEpochSwitch(t *testing.T) {
	dir := buildDir(t)
	db, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if db.Epoch() != 1 {
		t.Fatalf("fresh store epoch = %d, want 1", db.Epoch())
	}
	before, _, err := db.Query(samples.PaperQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.InsertFragment(mustID(t, "0"), strings.NewReader("<note><title>x</title></note>")); err != nil {
		t.Fatal(err)
	}
	if db.Epoch() != 2 {
		t.Errorf("post-insert epoch = %d, want 2", db.Epoch())
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: manifest resolves epoch-2 files, old epoch files are gone.
	db2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Recovery().Recovered() {
		t.Errorf("clean reopen reported recovery: %+v", db2.Recovery())
	}
	after, _, err := db2.Query(samples.PaperQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Errorf("query results changed across epoch switch: %d vs %d", len(after), len(before))
	}
	for role, name := range storeFiles(t, dir) {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("role %s (%s): %v", role, name, err)
		}
	}
	// Epoch-1 files must have been swept.
	if _, err := os.Stat(filepath.Join(dir, epochFileName(roleTagIdx, 1))); !os.IsNotExist(err) {
		t.Errorf("old epoch file still present (err=%v)", err)
	}
}
