package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nok/internal/samples"
)

// buildDir loads the bibliography into a fresh directory and closes it.
func buildDir(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "db")
	db, err := LoadXML(dir, strings.NewReader(samples.Bibliography), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestOpenFailsCleanlyOnCorruption damages each store file in turn; Open
// (or the first query) must return an error, never panic, and never
// return wrong data silently for structural corruption.
func TestOpenFailsCleanlyOnCorruption(t *testing.T) {
	files := []string{"tree.pg", "tags.sym", "stats.dat", "tagidx.pg", "validx.pg", "deweyidx.pg"}
	for _, name := range files {
		name := name
		t.Run("truncate-"+name, func(t *testing.T) {
			dir := buildDir(t)
			path := filepath.Join(dir, name)
			if err := os.Truncate(path, 3); err != nil {
				t.Fatal(err)
			}
			db, err := Open(dir, nil)
			if err == nil {
				// Some truncations only surface at query time; that is
				// acceptable as long as it is an error, not a panic.
				defer db.Close()
				_, _, qerr := db.Query(samples.PaperQuery, nil)
				if qerr == nil {
					t.Errorf("truncated %s: no error surfaced", name)
				}
			}
		})
		t.Run("missing-"+name, func(t *testing.T) {
			dir := buildDir(t)
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				t.Fatal(err)
			}
			if db, err := Open(dir, nil); err == nil {
				db.Close()
				t.Errorf("missing %s: Open succeeded", name)
			}
		})
	}
}

func TestGarbageOverwrite(t *testing.T) {
	for _, name := range []string{"tree.pg", "tagidx.pg"} {
		name := name
		t.Run(name, func(t *testing.T) {
			dir := buildDir(t)
			if err := os.WriteFile(filepath.Join(dir, name),
				[]byte(strings.Repeat("garbage!", 512)), 0o644); err != nil {
				t.Fatal(err)
			}
			if db, err := Open(dir, nil); err == nil {
				db.Close()
				t.Errorf("garbage %s accepted by Open", name)
			}
		})
	}
}

// TestMissingValuesFileDegradesAtQueryTime: values.dat holds content only;
// opening without it must fail (it is part of the store's contract).
func TestMissingValuesFile(t *testing.T) {
	dir := buildDir(t)
	if err := os.Remove(filepath.Join(dir, "values.dat")); err != nil {
		t.Fatal(err)
	}
	if db, err := Open(dir, nil); err == nil {
		db.Close()
		t.Error("missing values.dat: Open succeeded")
	}
}
