package core

// snapshot.go — MVCC snapshot views.
//
// A Snapshot is one committed epoch of the store, immutable for its whole
// lifetime: the string tree pinned to a copy-on-write page-table version
// (internal/pager), the epoch's symbol table, statistics and B+ tree index
// files, and the shared append-only value store. Every query evaluates
// against exactly one Snapshot, so writers never block readers — a commit
// builds the next Snapshot off to the side and publishes it with one
// atomic pointer swap.
//
// Lifetime is reference-counted. A live Snapshot starts with one reference
// held by the DB for being "current"; Acquire adds one per in-flight
// reader. When a commit supersedes a view the DB drops its reference, and
// whichever Release brings the count to zero destroys the view: its index
// files are closed, the pinned page-table version is released (recycling
// the epoch's private tree pages), and its superseded epoch-named files
// are deleted from the directory.

import (
	"errors"
	"sync"
	"sync/atomic"

	"nok/internal/btree"
	"nok/internal/obs"
	"nok/internal/pager"
	"nok/internal/pattern"
	"nok/internal/planner"
	"nok/internal/stats"
	"nok/internal/stree"
	"nok/internal/symtab"
	"nok/internal/vstore"
)

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = errors.New("core: store is closed")

// ErrShardUnavailable is the sentinel for queries that could not be
// answered completely because a shard was unreachable and the caller did
// not opt into degraded partial results. The scatter-gather executor
// (internal/shard) wraps it in a typed error naming the missing shards;
// the HTTP server maps it to 503. Match it with errors.Is.
var ErrShardUnavailable = errors.New("core: shard unavailable")

// Snapshot lifecycle counters, exposed through the default obs registry.
var (
	mSnapAcquires  = obs.Default.Counter("nok_mvcc_snapshot_acquires_total", "snapshot references taken by readers")
	mSnapDestroyed = obs.Default.Counter("nok_mvcc_snapshots_destroyed_total", "superseded snapshots garbage-collected")
	mSnapFilesGCd  = obs.Default.Counter("nok_mvcc_epoch_files_deleted_total", "superseded epoch-named files deleted by snapshot GC")
)

// Snapshot is an immutable view of the store at one committed epoch.
// All read-side evaluation (queries, pattern matching, planning) runs
// against a Snapshot; the DB embeds the current one.
type Snapshot struct {
	epoch uint64

	// Tree is a read-only view of the string representation over the
	// pinned page-table version psn.
	Tree   *stree.Store
	Tags   *symtab.Table
	Values *vstore.Store // shared with the DB and all other snapshots

	TagIdx   *btree.Tree
	ValIdx   *btree.Tree
	DeweyIdx *btree.Tree
	// PathIdx is the §8 path-index extension: hash(root-to-node tag path)
	// ‖ Dewey → position. See internal/core/pathidx.go.
	PathIdx *btree.Tree

	tagIdxFile, valIdxFile, dewIdxFile, pathIdxFile *pager.File

	// tagCount[sym] is the number of nodes with that tag — the §6.2
	// selectivity statistic.
	tagCount map[symtab.Sym]uint64
	total    uint64

	// syn is the statistics synopsis for this epoch (nil when the store
	// has none). It is atomic because RefreshSynopsis installs a rebuilt
	// synopsis into the *current* view while readers consult it.
	syn       atomic.Pointer[stats.Synopsis]
	planMu    sync.Mutex
	planCache map[string]*planner.Plan

	db  *DB
	psn *pager.Snapshot // pinned tree page-table version (nil only mid-build)

	// refs counts the DB's "current" reference plus one per reader.
	// It starts at 1 when the view is published and the view is destroyed
	// when it reaches zero. A negative or zero count means the view is
	// dead and must not be acquired.
	refs atomic.Int64

	// obsolete lists the previous-epoch files this view superseded was
	// built from — set on the *retiring* view by the commit that replaces
	// it, deleted when the retired view is destroyed (no reader can need
	// them after that).
	obsolete []string
}

// Epoch returns the committed epoch this snapshot observes.
func (v *Snapshot) Epoch() uint64 { return v.epoch }

// tryAcquire adds a reference unless the view is already dead.
func (v *Snapshot) tryAcquire() bool {
	for {
		r := v.refs.Load()
		if r <= 0 {
			return false
		}
		if v.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

// Release drops one reference; the caller must not touch the snapshot
// afterwards. The final release destroys the view.
func (v *Snapshot) Release() {
	r := v.refs.Add(-1)
	if r == 0 {
		v.destroy()
	} else if r < 0 {
		panic("core: Snapshot released more often than acquired")
	}
}

// destroy tears the view down: index files closed, the pinned page-table
// version released (its private tree pages become reusable), superseded
// epoch files deleted. Runs exactly once, possibly on a reader goroutine;
// errors are best-effort because no caller can act on them.
func (v *Snapshot) destroy() {
	for _, pf := range []*pager.File{v.tagIdxFile, v.valIdxFile, v.dewIdxFile, v.pathIdxFile} {
		if pf != nil {
			_ = pf.Close()
		}
	}
	if v.psn != nil {
		v.psn.Release()
	}
	for _, name := range v.obsolete {
		if v.db.fsys.Remove(v.db.join(name)) == nil {
			mSnapFilesGCd.Inc()
		}
	}
	mSnapDestroyed.Inc()
	v.db.viewsWG.Done()
}

// closeFiles closes the view's index files directly, for tearing down a
// partially opened store whose refcounting was never wired.
func (v *Snapshot) closeFiles() []error {
	var errs []error
	for _, pf := range []*pager.File{v.tagIdxFile, v.valIdxFile, v.dewIdxFile, v.pathIdxFile} {
		if pf != nil {
			if err := pf.Close(); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errs
}

// publish wires the view's lifecycle (one "current" reference, one GC
// wait-group unit) and installs it as the DB's current snapshot.
func (v *Snapshot) publish() {
	v.refs.Store(1)
	v.db.viewsWG.Add(1)
	v.db.curv.Store(v)
}

// Acquire pins the current committed snapshot for reading. The caller
// must Release it. Fails with ErrClosed once Close has begun.
func (db *DB) Acquire() (*Snapshot, error) {
	for {
		if db.closed.Load() {
			return nil, ErrClosed
		}
		v := db.curv.Load()
		if v == nil {
			return nil, ErrClosed
		}
		if v.tryAcquire() {
			// Close may have started between the load and the acquire;
			// re-check so Close's drain is not raced past.
			if db.closed.Load() {
				v.Release()
				return nil, ErrClosed
			}
			mSnapAcquires.Inc()
			return v, nil
		}
		// The view died between load and acquire (a commit retired it and
		// its readers drained); loop to pick up the new current view.
	}
}

// Query pins the current snapshot for the duration of one evaluation.
func (db *DB) Query(expr string, opts *QueryOptions) ([]Match, *QueryStats, error) {
	v, err := db.Acquire()
	if err != nil {
		return nil, nil, err
	}
	defer v.Release()
	return v.Query(expr, opts)
}

// QueryPattern pins the current snapshot for the duration of one
// evaluation of an already parsed pattern.
func (db *DB) QueryPattern(t *pattern.Tree, opts *QueryOptions) ([]Match, *QueryStats, error) {
	v, err := db.Acquire()
	if err != nil {
		return nil, nil, err
	}
	defer v.Release()
	return v.QueryPattern(t, opts)
}

// MVCCInfo reports the MVCC machinery's state: the committed epoch, the
// pager's live page-table versions, and the physical-page accounting.
type MVCCInfo struct {
	Epoch        uint64
	LiveVersions int // page-table versions still referenced (current + pinned)
	PinnedSnaps  int // reader pins across all live versions
	NumLogical   int // logical tree pages at the current epoch
	NumPhysical  int // physical pages ever allocated in tree.pg
	FreePhysical int // physical pages awaiting recycling
	OrphanPages  int // physicals neither live nor free (0 in a healthy store)
}

// MVCCInfo summarizes the store's version state.
func (db *DB) MVCCInfo() MVCCInfo {
	vi := db.treeFile.VersionInfo()
	return MVCCInfo{
		Epoch:        vi.Epoch,
		LiveVersions: vi.LiveVersions,
		PinnedSnaps:  vi.PinnedSnaps,
		NumLogical:   vi.NumLogical,
		NumPhysical:  vi.NumPhysical,
		FreePhysical: vi.FreePhysical,
		OrphanPages:  db.treeFile.UnaccountedPhysicalPages(),
	}
}
