package core

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"nok/internal/dewey"
	"nok/internal/sax"
	"nok/internal/stats"
	"nok/internal/stree"
	"nok/internal/symtab"
	"nok/internal/vstore"
)

// This file is the group-commit append path behind internal/ingest. A
// batch of fragments parses into ONE concatenated token string (balanced
// subtrees concatenate into a string InsertChild accepts wholesale), so
// the whole batch costs a single copy-on-write transaction: one subtree
// splice, one index rebuild, one fsync + MANIFEST rename, one published
// epoch. That amortization is what makes sustained ingest viable — the
// per-commit cost that dominates Insert is paid once per batch.
//
// The statistics synopsis is maintained incrementally on this path: the
// parse feeds a delta builder seeded with the insertion point's ancestor
// chain, and the delta merges into the previous epoch's synopsis
// (stats.Merge) instead of being recollected by the rebuild scan. The
// merged synopsis commits at the new epoch, so the planner never sees
// stale statistics mid-stream.

// FragmentError reports which fragment of a batch failed, so callers can
// drop it and retry the rest. It always wraps the underlying cause.
type FragmentError struct {
	// Index is the position of the offending fragment in the batch.
	Index int
	Err   error
}

func (e *FragmentError) Error() string {
	return fmt.Sprintf("core: batch fragment %d: %v", e.Index, e.Err)
}

func (e *FragmentError) Unwrap() error { return e.Err }

// InsertFragmentBatch appends every fragment, in order, as new last
// children of the node identified by parent — one atomic commit, one new
// epoch. Each fragment must contain exactly one root element. A parse
// failure aborts the whole batch before ANY mutation — the tree, the
// symbol table, and the append-only value store are all untouched — and
// is reported as a *FragmentError identifying the offender, so callers
// may drop it and retry the rest without leaking state.
func (db *DB) InsertFragmentBatch(parent dewey.ID, frags []io.Reader) error {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	if db.closed.Load() {
		return ErrClosed
	}
	if db.broken {
		return ErrNeedsRecovery
	}
	if len(frags) == 0 {
		return nil
	}
	pos, _, found, err := db.NodeAt(parent)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("core: no node with ID %s", parent)
	}

	// The first new subtree's Dewey ordinal is the parent's current child
	// count plus one; subsequent fragments take consecutive ordinals.
	kids, err := db.countChildren(pos)
	if err != nil {
		return err
	}

	// New names intern into a clone of the committed symbol table:
	// readers of the current epoch keep their table untouched, and an
	// abort simply discards the clone.
	newTags := db.Tags.Clone()

	// Incremental synopsis: when the committed synopsis is fresh, collect
	// the batch's contribution in a delta builder seeded with the
	// insertion point's ancestor chain and merge instead of rebuilding.
	// A stale or missing synopsis falls back to the full rebuild scan.
	var delta *stats.Builder
	prev := db.Snapshot.syn.Load()
	if prev != nil && prev.Epoch == db.Snapshot.epoch {
		if anc, err := db.ancestorSyms(parent); err == nil {
			delta = stats.NewDeltaBuilder(anc)
		}
	}

	var enc stree.SubtreeEncoder
	var pend []pendingValue
	for i, r := range frags {
		ord := kids + 1 + uint32(i)
		if err := db.parseFragment(r, &enc, newTags, parent, ord, &pend, delta); err != nil {
			return &FragmentError{Index: i, Err: err}
		}
	}
	tokens, err := enc.Bytes()
	if err != nil {
		return err
	}

	// Text values land in the append-only value store only now, after the
	// whole batch parsed: a *FragmentError abort must leave the store
	// untouched, or a caller's drop-and-retry would re-append every
	// retained fragment's values as uncompactable orphan bytes. An append
	// failure here is an I/O error, fatal rather than per-fragment.
	valueAt := make(map[string]uint64, len(pend))
	for _, pv := range pend {
		off, err := db.Values.Append([]byte(pv.text))
		if err != nil {
			return err
		}
		valueAt[pv.id] = uint64(off)
	}

	// Carry over existing dewey→value associations (appending as the last
	// child never renumbers existing nodes), add the new ones, then run
	// the whole batch as one atomic commit.
	carried, err := db.valueAssociations(nil, 0)
	if err != nil {
		return err
	}
	for k, v := range valueAt {
		carried[k] = v
	}
	var merged *stats.Synopsis
	if delta != nil {
		merged = stats.Merge(prev, delta.Delta())
	}
	return db.applyUpdate(newTags, carried, merged, func(t *stree.Store) error {
		return t.InsertChild(pos, tokens)
	})
}

// pendingValue is a text value collected during the parse, buffered so
// nothing touches the append-only value store until the whole batch is
// known to parse.
type pendingValue struct {
	id   string // Dewey ID the new node will have
	text string
}

// parseFragment parses one XML fragment into the shared batch encoder,
// collects its values keyed by the Dewey IDs the new nodes will have
// (rooted at parent.Child(ord)), and — when delta is non-nil — feeds the
// synopsis delta builder. The fragment must contain exactly one root
// element so consecutive batch ordinals line up with the spliced tree.
// Nothing durable mutates here: values are buffered into pend, names
// intern into the cloned table, and an error discards both.
func (db *DB) parseFragment(r io.Reader, enc *stree.SubtreeEncoder, newTags *symtab.Table,
	parent dewey.ID, ord uint32, pend *[]pendingValue, delta *stats.Builder) error {
	// Fragment roots sit one level below the parent; len(parent) is the
	// parent's depth (the document root's ID "0" has length 1, depth 1).
	baseLevel := len(parent)
	type open struct {
		id    dewey.ID
		text  strings.Builder
		kids  uint32
		level int
	}
	var stack []*open
	rootSeen := false
	sc := sax.NewScanner(r)
	openElem := func(name string) error {
		sym, err := newTags.Intern(name)
		if err != nil {
			return err
		}
		if err := enc.Open(sym); err != nil {
			return err
		}
		var id dewey.ID
		if len(stack) == 0 {
			if rootSeen {
				return errors.New("core: fragment must have a single root element")
			}
			rootSeen = true
			id = parent.Child(ord)
		} else {
			p := stack[len(stack)-1]
			p.kids++
			id = p.id.Child(p.kids)
		}
		level := baseLevel + len(stack) + 1
		if delta != nil {
			delta.Node(sym, level)
		}
		stack = append(stack, &open{id: id, level: level})
		return nil
	}
	closeElem := func(trim bool) error {
		if err := enc.Close(); err != nil {
			return err
		}
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		text := e.text.String()
		if trim {
			text = strings.TrimSpace(text)
		}
		if text != "" {
			*pend = append(*pend, pendingValue{id: e.id.String(), text: text})
			if delta != nil {
				delta.Value(e.level, vstore.Hash([]byte(text)))
			}
		}
		return nil
	}
	for {
		ev, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		switch ev.Kind {
		case sax.StartElement:
			if err := openElem(ev.Name); err != nil {
				return err
			}
			for _, a := range ev.Attrs {
				if err := openElem(symtab.AttrPrefix + a.Name); err != nil {
					return err
				}
				stack[len(stack)-1].text.WriteString(a.Value)
				if err := closeElem(false); err != nil {
					return err
				}
			}
		case sax.EndElement:
			if err := closeElem(true); err != nil {
				return err
			}
		case sax.Text:
			if len(stack) > 0 {
				stack[len(stack)-1].text.WriteString(ev.Data)
			}
		}
	}
	if !rootSeen {
		return errors.New("core: fragment must have a single root element")
	}
	return nil
}

// ancestorSyms returns the tag symbols on the path from the document root
// down to (and including) the node with the given ID — the seed chain for
// a synopsis delta builder.
func (db *DB) ancestorSyms(id dewey.ID) ([]symtab.Sym, error) {
	syms := make([]symtab.Sym, 0, len(id))
	for i := 1; i <= len(id); i++ {
		pos, _, ok, err := db.NodeAt(id[:i])
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("core: no node with ID %s", id[:i])
		}
		sym, err := db.Tree.SymAt(pos)
		if err != nil {
			return nil, err
		}
		syms = append(syms, sym)
	}
	return syms, nil
}
