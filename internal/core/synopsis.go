package core

// synopsis.go — the DB side of the statistics synopsis (internal/stats)
// and the cost-based planner (internal/planner): loading the committed
// synopsis, rebuilding it on demand for stores that predate it, the plan
// cache, and the Access→Strategy mapping the evaluator uses to execute a
// plan.

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"nok/internal/dewey"
	"nok/internal/obs"
	"nok/internal/pattern"
	"nok/internal/planner"
	"nok/internal/stats"
	"nok/internal/stree"
	"nok/internal/symtab"
	"nok/internal/vfs"
	"nok/internal/vstore"
)

// Planner/synopsis counters, exposed through the default obs registry.
var (
	mSynopsisLoadErrs = obs.Default.Counter("nok_synopsis_load_errors_total", "synopsis files that failed to load (corrupt or unreadable)")
	mPlanCacheHits    = obs.Default.Counter("nok_plan_cache_hits_total", "query plans served from the per-store plan cache")
	mPlanCacheMisses  = obs.Default.Counter("nok_plan_cache_misses_total", "query plans built by the cost-based planner")
	mPlanFallbacks    = obs.Default.Counter("nok_plan_fallbacks_total", "auto-strategy queries evaluated by the heuristic because no fresh synopsis existed")
)

// loadSynopsis reads the committed synopsis, if any. Failures are recorded
// but never propagated: the planner simply stays unavailable.
func (db *DB) loadSynopsis() {
	rec, ok := db.manifest.Files[roleSynopsis]
	if !ok {
		return
	}
	raw, err := vfs.ReadFile(db.fsys, filepath.Join(db.dir, rec.Name))
	if err != nil {
		mSynopsisLoadErrs.Inc()
		return
	}
	syn, err := stats.Decode(raw)
	if err != nil {
		mSynopsisLoadErrs.Inc()
		return
	}
	db.syn.Store(syn)
}

// Synopsis returns the loaded statistics synopsis (nil when absent). It
// may be stale; see SynopsisFresh.
func (db *Snapshot) Synopsis() *stats.Synopsis { return db.syn.Load() }

// SynopsisFresh reports whether a synopsis exists at the snapshot's
// epoch — the condition under which StrategyAuto consults the planner.
func (db *Snapshot) SynopsisFresh() bool {
	syn := db.syn.Load()
	return syn != nil && syn.Epoch == db.epoch
}

// shape derives the planner's physical cost parameters from the open
// store: the string tree's page count, the Dewey index's height as the
// typical B+-tree descent cost, and a leaf fan-out estimated from the
// index page size (entries average ~32 bytes: a Dewey key plus a 14-byte
// payload and slot overhead).
func (db *Snapshot) shape() planner.Shape {
	return planner.Shape{
		TreePages:   float64(db.Tree.NumPages()),
		IndexHeight: float64(db.DeweyIdx.Height()),
		LeafFanout:  float64(db.dewIdxFile.PageSize()) / 32,
	}
}

// planFor returns the cost-based plan for a parsed query, or nil when the
// planner cannot run (no synopsis, or one from another epoch). Plans are
// cached per canonical expression and invalidated on epoch change.
func (db *Snapshot) planFor(t *pattern.Tree, parts []*pattern.NoKTree, anchor *pattern.Node, chain []string) *planner.Plan {
	syn := db.syn.Load()
	if syn == nil || syn.Epoch != db.epoch {
		mPlanFallbacks.Inc()
		return nil
	}
	key := t.String()
	db.planMu.Lock()
	if p, ok := db.planCache[key]; ok && p.Epoch == db.epoch {
		db.planMu.Unlock()
		mPlanCacheHits.Inc()
		return p
	}
	db.planMu.Unlock()
	mPlanCacheMisses.Inc()
	p := planner.Build(planner.Input{
		Expr:   t.Source,
		Tree:   t,
		Parts:  parts,
		Anchor: anchor,
		Chain:  chain,
	}, syn, db.Tags, db.shape())
	db.planMu.Lock()
	if db.planCache == nil {
		db.planCache = make(map[string]*planner.Plan)
	}
	db.planCache[key] = p
	db.planMu.Unlock()
	return p
}

// invalidatePlans empties the plan cache (after every committed epoch
// change or synopsis refresh).
func (db *Snapshot) invalidatePlans() {
	db.planMu.Lock()
	db.planCache = nil
	db.planMu.Unlock()
}

// strategyForAccess maps a planned access path to the evaluator strategy
// that executes it.
func strategyForAccess(a planner.Access) Strategy {
	switch a {
	case planner.AccessTagIndex:
		return StrategyTagIndex
	case planner.AccessValueIndex:
		return StrategyValueIndex
	case planner.AccessPathIndex:
		return StrategyPathIndex
	default:
		return StrategyScan
	}
}

// Plan builds (or fetches from cache) the cost-based plan for expr without
// executing it. When the planner cannot run, the plan is nil and reason
// says why.
func (db *Snapshot) Plan(expr string) (*planner.Plan, string, error) {
	t, err := pattern.Parse(expr)
	if err != nil {
		return nil, "", err
	}
	syn := db.syn.Load()
	if syn == nil {
		return nil, "no statistics synopsis (store predates it; refresh statistics to enable the planner)", nil
	}
	if syn.Epoch != db.epoch {
		return nil, fmt.Sprintf("synopsis is stale (built at epoch %d, store is at %d); refresh statistics", syn.Epoch, db.epoch), nil
	}
	parts := pattern.Partition(t)
	anchor, chain := topAnchor(parts[0], t)
	return db.planFor(t, parts, anchor, chain), "", nil
}

// PlanText renders the plan for expr, or the fallback explanation when the
// planner is unavailable.
func (db *Snapshot) PlanText(expr string) (string, error) {
	p, reason, err := db.Plan(expr)
	if err != nil {
		return "", err
	}
	if p == nil {
		return fmt.Sprintf("plan %s\n  planner unavailable: %s\n  auto strategy falls back to the paper's §6.2 heuristic\n", expr, reason), nil
	}
	return p.String(), nil
}

// RefreshSynopsis rebuilds the statistics synopsis from the committed
// store state and commits it into the manifest at the current epoch —
// the upgrade path for stores that predate the synopsis and the repair
// path after one went stale or was lost.
func (db *DB) RefreshSynopsis() error {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	if db.closed.Load() {
		return ErrClosed
	}
	if db.broken {
		return ErrNeedsRecovery
	}
	sb := stats.NewBuilder()
	var scanErr error
	err := db.Tree.Scan(func(pos stree.Pos, sym symtab.Sym, level int, id dewey.ID) bool {
		sb.Node(sym, level)
		_, valOff, found, err := db.NodeAt(id)
		if err != nil {
			scanErr = err
			return false
		}
		if found && valOff != NoValue {
			v, err := db.Values.Get(int64(valOff))
			if err != nil {
				scanErr = err
				return false
			}
			sb.Value(level, vstore.Hash(v))
		}
		return true
	})
	if err == nil {
		err = scanErr
	}
	if err != nil {
		return fmt.Errorf("core: rebuilding synopsis: %w", err)
	}
	syn := sb.Finish(db.epoch, uint64(db.Tree.NumPages()))

	name := epochFileName(roleSynopsis, db.epoch)
	if err := vfs.WriteFileAtomic(db.fsys, filepath.Join(db.dir, name), stats.Encode(syn), 0o644); err != nil {
		return err
	}
	rec, err := record(db.fsys, db.dir, name)
	if err != nil {
		return err
	}
	// Re-commit the manifest at the same epoch with the synopsis role
	// added. A crash before the manifest write leaves an orphan the next
	// open sweeps; after it, the synopsis is committed.
	m := &Manifest{Format: FormatVersion, Epoch: db.epoch, Files: make(map[string]FileRecord, len(db.manifest.Files)+1)}
	for role, r := range db.manifest.Files {
		m.Files[role] = r
	}
	old, hadOld := m.Files[roleSynopsis]
	m.Files[roleSynopsis] = rec
	if err := writeManifest(db.fsys, db.dir, m); err != nil {
		return err
	}
	if hadOld && old.Name != name {
		_ = db.fsys.Remove(filepath.Join(db.dir, old.Name))
	}
	db.manifest = m
	// Install into the *current* snapshot: the synopsis is advisory (it
	// only steers planning), so mutating the live view is safe — the
	// pointer is atomic and plans are re-derived under planMu.
	db.syn.Store(syn)
	db.invalidatePlans()
	return nil
}

// TagCountInfo is one row of a synopsis dump.
type TagCountInfo struct {
	Name  string
	Count uint64
}

// PathCountInfo is one path-summary row of a synopsis dump.
type PathCountInfo struct {
	Path  string // rendered as /a/b/c
	Count uint64
}

// SynopsisInfo is the human-facing summary nokstat -stats prints.
type SynopsisInfo struct {
	Present    bool
	Stale      bool
	Epoch      uint64 // synopsis epoch (0 when absent)
	StoreEpoch uint64
	TotalNodes uint64
	ValueNodes uint64
	TreePages  uint64
	MaxDepth   uint32
	Tags       int // distinct tags
	Paths      int // distinct root-to-node paths recorded
	Truncated  bool
	TopTags    []TagCountInfo
	TopPaths   []PathCountInfo
}

// SynopsisInfo summarizes the loaded synopsis with the top-n tags and
// paths by cardinality.
func (db *Snapshot) SynopsisInfo(n int) SynopsisInfo {
	out := SynopsisInfo{StoreEpoch: db.epoch}
	syn := db.syn.Load()
	if syn == nil {
		return out
	}
	out.Present = true
	out.Stale = syn.Epoch != db.epoch
	out.Epoch = syn.Epoch
	out.TotalNodes = syn.TotalNodes
	out.ValueNodes = syn.ValueNodes
	out.TreePages = syn.TreePages
	out.MaxDepth = syn.MaxDepth
	out.Tags = len(syn.Tags)
	out.Paths = len(syn.Paths)
	out.Truncated = syn.PathsTruncated

	for _, r := range syn.TopTags(n) {
		name, ok := db.Tags.Name(r.Sym)
		if !ok {
			name = fmt.Sprintf("sym(%d)", r.Sym)
		}
		out.TopTags = append(out.TopTags, TagCountInfo{Name: name, Count: r.Count})
	}

	paths := make([]PathCountInfo, 0, len(syn.Paths))
	for _, ps := range syn.Paths {
		var b strings.Builder
		for _, sym := range ps.Syms {
			name, ok := db.Tags.Name(sym)
			if !ok {
				name = fmt.Sprintf("sym(%d)", sym)
			}
			b.WriteByte('/')
			b.WriteString(name)
		}
		paths = append(paths, PathCountInfo{Path: b.String(), Count: ps.Count})
	}
	sort.Slice(paths, func(i, j int) bool {
		if paths[i].Count != paths[j].Count {
			return paths[i].Count > paths[j].Count
		}
		return paths[i].Path < paths[j].Path
	})
	if n > 0 && len(paths) > n {
		paths = paths[:n]
	}
	out.TopPaths = paths
	return out
}
