package core

// manifest.go — the store's atomic commit protocol.
//
// A database directory is committed by a MANIFEST file: a checksummed,
// atomically replaced record of the current epoch and, for every store
// file, its name, byte length and full-file CRC32C. Whatever the manifest
// names IS the store; everything else in the directory is garbage from an
// interrupted transaction.
//
// Commit strategy per file class:
//
//   - tree.pg is copy-on-write (internal/pager/versions.go): a mutation
//     relocates every page it touches to a fresh physical page, so the
//     committed epoch's pages are never overwritten. The epoch's
//     logical→physical page table is serialized to an epoch-named
//     "treemap" sidecar (own CRC32C); the manifest's CRC for tree.pg is
//     recorded as 0 because the file legitimately contains free pages
//     with stale bytes — integrity comes from the per-page checksum
//     trailers of the *referenced* pages plus the sidecar checksum.
//   - values.dat is append-only; rolling back means truncating to the
//     length the manifest records.
//   - The four B+ tree indexes, the symbol table, the statistics file and
//     the treemap sidecar are written fresh per epoch (e.g.
//     tagidx-0000002a.pg) and switched over by the manifest replace; the
//     previous epoch's files are deleted once no pinned snapshot can
//     still need them (or by recovery, whichever runs first).
//
// A commit is: fsync every file → write the treemap sidecar → write
// MANIFEST via tmp+fsync+rename+dir fsync. The manifest replace is the
// commit point; there is no undo journal. Open recovers by reading the
// manifest, truncating garbage tails off the fixed-name files, deriving
// orphaned copy-on-write pages into the free list (see
// pager.InstallVersion), and sweeping orphaned epoch files.

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"regexp"

	"nok/internal/obs"
	"nok/internal/pager"
	"nok/internal/vfs"
)

// FormatVersion is the store format the manifest commits to. Version 3
// made tree.pg copy-on-write with an epoch-named page-table sidecar (the
// "treemap" role), replacing the undo journal; version 2 introduced
// checksummed pages, file headers, and the manifest itself. Older
// directories must be rebuilt from the source document.
const FormatVersion = 3

// ManifestName is the commit record's file name inside a store directory.
const ManifestName = "MANIFEST"

const manifestMagic = "NOKMF1"

// Roles name the store files inside the manifest, independent of the
// (possibly epoch-suffixed) physical file names.
const (
	roleTree   = "tree"
	roleValues = "values"
	// roleTreeMap is tree.pg's committed logical→physical page table (the
	// shadow-paging sidecar, one per epoch).
	roleTreeMap = "treemap"
	roleTags    = "tags"
	roleStats   = "stats"
	roleTagIdx  = "tagidx"
	roleValIdx  = "validx"
	roleDewIdx  = "deweyidx"
	rolePathIdx = "pathidx"
	// roleSynopsis is the planner's statistics synopsis (internal/stats).
	// Deliberately NOT in allRoles: the synopsis is auxiliary, and a store
	// whose synopsis file is missing or damaged must still open and query
	// (via the heuristic fallback). Recovery treats it leniently.
	roleSynopsis = "synopsis"
)

var allRoles = []string{roleTree, roleValues, roleTreeMap, roleTags, roleStats, roleTagIdx, roleValIdx, roleDewIdx, rolePathIdx}

// Typed open/recovery errors. All are wrapped with file detail; test with
// errors.Is.
var (
	// ErrNoManifest: the directory has no MANIFEST — either it is not a
	// store, a bulk load crashed before committing, or the store predates
	// the manifest format.
	ErrNoManifest = errors.New("core: no manifest (not a store, an uncommitted load, or a pre-manifest store that must be rebuilt)")
	// ErrManifestCorrupt: MANIFEST exists but fails its checksum or does
	// not parse.
	ErrManifestCorrupt = errors.New("core: manifest corrupt")
	// ErrMissingFile: the manifest names a file that does not exist.
	ErrMissingFile = errors.New("core: store file missing")
	// ErrTruncatedFile: a store file is shorter than the committed length.
	ErrTruncatedFile = errors.New("core: store file shorter than committed length")
)

// Recovery counters, exposed through /metrics and nokstat.
var (
	mRecReplays   = obs.Default.Counter("nok_recovery_journal_replays_total", "undo journals rolled back at open")
	mRecDiscards  = obs.Default.Counter("nok_recovery_journal_discards_total", "undo journals discarded at open (commit had completed)")
	mRecTruncates = obs.Default.Counter("nok_recovery_truncations_total", "file tails truncated back to the committed length at open")
	mRecOrphans   = obs.Default.Counter("nok_recovery_orphans_removed_total", "orphaned epoch/tmp files swept at open")
	mRecOpens     = obs.Default.Counter("nok_recovery_opens_total", "opens that performed at least one recovery action")
)

// FileRecord is one committed file in the manifest.
type FileRecord struct {
	Name   string `json:"name"`
	Size   int64  `json:"size"`
	CRC32C uint32 `json:"crc32c"`
}

// Manifest is the store's commit record.
type Manifest struct {
	Format int                   `json:"format"`
	Epoch  uint64                `json:"epoch"`
	Files  map[string]FileRecord `json:"files"`
}

// RecoveryInfo reports what Open had to repair to reach a committed state.
type RecoveryInfo struct {
	// JournalReplayed: an undo journal from an uncommitted update was
	// rolled back.
	JournalReplayed bool
	// JournalDiscarded: a journal whose commit had completed (or whose
	// header never became durable) was removed.
	JournalDiscarded bool
	// TruncatedFiles lists files whose uncommitted tails were cut off.
	TruncatedFiles []string
	// OrphansRemoved lists swept leftover files (stale epochs, tmp files).
	OrphansRemoved []string
}

// Recovered reports whether any recovery action ran.
func (r RecoveryInfo) Recovered() bool {
	return r.JournalReplayed || r.JournalDiscarded || len(r.TruncatedFiles) > 0 || len(r.OrphansRemoved) > 0
}

// epochFileName returns the physical name for an epoch-switched role.
func epochFileName(role string, epoch uint64) string {
	ext := ".pg"
	switch role {
	case roleTags:
		ext = ".sym"
	case roleStats:
		ext = ".dat"
	case roleSynopsis:
		ext = ".bin"
	case roleTreeMap:
		ext = ".vt"
	}
	return fmt.Sprintf("%s-%08x%s", role, epoch, ext)
}

// epochFilePat matches any epoch-named store file (for orphan sweeping).
var epochFilePat = regexp.MustCompile(`^(tags|stats|synopsis|tagidx|validx|deweyidx|pathidx|treemap)-[0-9a-f]{8}\.(sym|dat|bin|pg|vt)$`)

// readManifest loads and validates the manifest of dir.
func readManifest(fsys vfs.FS, dir string) (*Manifest, error) {
	raw, err := vfs.ReadFile(fsys, filepath.Join(dir, ManifestName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s", ErrNoManifest, dir)
		}
		return nil, err
	}
	// Line 1: "NOKMF1 <crc32c-hex>\n"; the rest is the JSON payload the
	// checksum covers.
	nl := -1
	for i, c := range raw {
		if c == '\n' {
			nl = i
			break
		}
	}
	headerLen := len(manifestMagic) + 1 + 8
	if nl != headerLen || string(raw[:len(manifestMagic)]) != manifestMagic {
		return nil, fmt.Errorf("%w: %s: bad header", ErrManifestCorrupt, dir)
	}
	var want uint32
	if _, err := fmt.Sscanf(string(raw[len(manifestMagic)+1:nl]), "%08x", &want); err != nil {
		return nil, fmt.Errorf("%w: %s: bad checksum field", ErrManifestCorrupt, dir)
	}
	payload := raw[nl+1:]
	if crc32.Checksum(payload, castagnoli) != want {
		return nil, fmt.Errorf("%w: %s: checksum mismatch (torn manifest write?)", ErrManifestCorrupt, dir)
	}
	var m Manifest
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrManifestCorrupt, dir, err)
	}
	if m.Format != FormatVersion {
		return nil, fmt.Errorf("core: %s: store format %d, this build reads %d (rebuild the store)", dir, m.Format, FormatVersion)
	}
	for _, role := range allRoles {
		if _, ok := m.Files[role]; !ok {
			return nil, fmt.Errorf("%w: %s: manifest lacks role %q", ErrManifestCorrupt, dir, role)
		}
	}
	return &m, nil
}

// writeManifest atomically replaces dir's manifest.
func writeManifest(fsys vfs.FS, dir string, m *Manifest) error {
	payload, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	head := fmt.Sprintf("%s %08x\n", manifestMagic, crc32.Checksum(payload, castagnoli))
	return vfs.WriteFileAtomic(fsys, filepath.Join(dir, ManifestName), append([]byte(head), payload...), 0o644)
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// fileChecksum streams path and returns its length and CRC32C.
func fileChecksum(fsys vfs.FS, path string) (int64, uint32, error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, 0, err
	}
	h := crc32.New(castagnoli)
	if _, err := io.Copy(h, io.NewSectionReader(f, 0, fi.Size())); err != nil {
		return 0, 0, err
	}
	return fi.Size(), h.Sum32(), nil
}

// record builds the manifest entry for one file.
func record(fsys vfs.FS, dir, name string) (FileRecord, error) {
	size, crc, err := fileChecksum(fsys, filepath.Join(dir, name))
	if err != nil {
		return FileRecord{}, err
	}
	return FileRecord{Name: name, Size: size, CRC32C: crc}, nil
}

// buildManifest checksums every named file and assembles the commit
// record. tree.pg is special: free physical pages legitimately hold stale
// bytes that change without a commit, so a whole-file CRC is meaningless —
// its record carries size only (CRC 0), and integrity is enforced per
// referenced page (checksum trailers) plus the treemap sidecar's own CRC.
func buildManifest(fsys vfs.FS, dir string, epoch uint64, names map[string]string) (*Manifest, error) {
	m := &Manifest{Format: FormatVersion, Epoch: epoch, Files: make(map[string]FileRecord, len(names))}
	for role, name := range names {
		if role == roleTree {
			fi, err := fsys.Stat(filepath.Join(dir, name))
			if err != nil {
				return nil, fmt.Errorf("core: sizing %s: %w", name, err)
			}
			m.Files[role] = FileRecord{Name: name, Size: fi.Size()}
			continue
		}
		rec, err := record(fsys, dir, name)
		if err != nil {
			return nil, fmt.Errorf("core: checksumming %s: %w", name, err)
		}
		m.Files[role] = rec
	}
	return m, nil
}

// recoverStore brings dir back to its last committed state and returns the
// manifest describing it. It is the first thing Open does.
func recoverStore(fsys vfs.FS, dir string) (*Manifest, RecoveryInfo, error) {
	var info RecoveryInfo
	m, err := readManifest(fsys, dir)
	if err != nil {
		return nil, info, err
	}
	treePath := filepath.Join(dir, m.Files[roleTree].Name)

	// Format 3 stores never write an undo journal (tree.pg is
	// copy-on-write), but a stray journal left behind by older tooling
	// protects nothing and would confuse a later downgrade — discard it.
	_, exists, _, err := pager.InspectJournal(fsys, treePath)
	if err != nil {
		return nil, info, fmt.Errorf("core: inspecting journal: %w", err)
	}
	if exists {
		if err := pager.DiscardJournal(fsys, treePath); err != nil {
			return nil, info, fmt.Errorf("core: discarding journal: %w", err)
		}
		info.JournalDiscarded = true
		mRecDiscards.Inc()
	}

	// Check every committed file's length; cut uncommitted tails off the
	// in-place/append-only files, and refuse anything shorter than
	// committed (that is damage, not an interrupted transaction).
	for _, role := range allRoles {
		rec := m.Files[role]
		path := filepath.Join(dir, rec.Name)
		fi, err := fsys.Stat(path)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				return nil, info, fmt.Errorf("%w: %s (role %s)", ErrMissingFile, rec.Name, role)
			}
			return nil, info, err
		}
		switch {
		case fi.Size() < rec.Size:
			return nil, info, fmt.Errorf("%w: %s is %d bytes, committed %d", ErrTruncatedFile, rec.Name, fi.Size(), rec.Size)
		case fi.Size() > rec.Size:
			if err := fsys.Truncate(path, rec.Size); err != nil {
				return nil, info, fmt.Errorf("core: truncating %s: %w", rec.Name, err)
			}
			info.TruncatedFiles = append(info.TruncatedFiles, rec.Name)
			mRecTruncates.Inc()
		}
	}

	// The synopsis is auxiliary (the planner falls back to the heuristic
	// without it): a missing or shortened synopsis file drops the role from
	// the in-memory manifest view instead of failing the open; an
	// over-length one is truncated back like any other committed file.
	if rec, ok := m.Files[roleSynopsis]; ok {
		path := filepath.Join(dir, rec.Name)
		fi, err := fsys.Stat(path)
		switch {
		case err != nil || fi.Size() < rec.Size:
			// Missing or damaged: forget it; if a damaged file remains on
			// disk the orphan sweep below removes it.
			delete(m.Files, roleSynopsis)
		case fi.Size() > rec.Size:
			if err := fsys.Truncate(path, rec.Size); err != nil {
				return nil, info, fmt.Errorf("core: truncating %s: %w", rec.Name, err)
			}
			info.TruncatedFiles = append(info.TruncatedFiles, rec.Name)
			mRecTruncates.Inc()
		}
	}

	// Sweep orphans: epoch-named files the manifest does not reference and
	// leftover atomic-write temporaries. Unknown files are left alone.
	current := make(map[string]bool, len(m.Files))
	for _, rec := range m.Files {
		current[rec.Name] = true
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, info, err
	}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || current[name] {
			continue
		}
		if epochFilePat.MatchString(name) || filepath.Ext(name) == ".tmp" {
			if err := fsys.Remove(filepath.Join(dir, name)); err != nil {
				return nil, info, fmt.Errorf("core: sweeping %s: %w", name, err)
			}
			info.OrphansRemoved = append(info.OrphansRemoved, name)
			mRecOrphans.Inc()
		}
	}
	if info.Recovered() {
		mRecOpens.Inc()
	}
	return m, info, nil
}
