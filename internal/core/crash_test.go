package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"nok/internal/dewey"
	"nok/internal/faultfs"
	"nok/internal/samples"
	"nok/internal/vfs"
)

// crashDoc is deliberately tiny: the sweep re-runs the whole workload once
// per mutating file-system operation, so the op count bounds the runtime.
const crashDoc = `<bib><book year="2004"><title>a</title><price>9</price></book></bib>`

const crashFragment = `<book year="2005"><title>b</title><price>11</price></book>`

// crashWorkload opens the store through fsys, inserts a fragment, deletes
// it again, and closes. Any step may fail once a fault is armed; the first
// error aborts the rest (the process "died" there).
func crashWorkload(dir string, fsys vfs.FS) error {
	db, err := Open(dir, &Options{FS: fsys})
	if err != nil {
		return err
	}
	if err := db.InsertFragment(dewey.Root(), strings.NewReader(crashFragment)); err != nil {
		db.Close()
		return err
	}
	if err := db.DeleteSubtree(mustID2("0.1")); err != nil {
		db.Close()
		return err
	}
	return db.Close()
}

func mustID2(s string) dewey.ID {
	id, err := dewey.Parse(s)
	if err != nil {
		panic(err)
	}
	return id
}

// buildCrashBase loads crashDoc into dir fault-free and returns the node
// counts of the two committed states the sweep may observe: n0 (before the
// insert, equal to after the delete) and n1 (after the insert).
func buildCrashBase(t *testing.T, dir string) (n0, n1 uint64) {
	t.Helper()
	db, err := LoadXML(dir, strings.NewReader(crashDoc), nil)
	if err != nil {
		t.Fatal(err)
	}
	n0 = db.NodeCount()
	if err := db.InsertFragment(dewey.Root(), strings.NewReader(crashFragment)); err != nil {
		t.Fatal(err)
	}
	n1 = db.NodeCount()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return n0, n1
}

// TestCrashDuringUpdateSweep is the tentpole crash-consistency test: it
// runs an open→insert→delete→close workload once per mutating file-system
// operation, killing the "process" at that operation, then reopens the
// store with the real file system and requires that recovery always lands
// on a committed state — node count and epoch of either the pre-insert,
// post-insert, or post-delete commit — and that a deep Verify is clean.
func TestCrashDuringUpdateSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep re-runs the workload once per fault point")
	}

	// Size the sweep: run the workload once with counting only.
	probeDir := t.TempDir() + "/probe"
	n0, n1 := buildCrashBase(t, probeDir)
	// The probe base already carries the insert; rebuild a clean one.
	probeDir = t.TempDir() + "/probe2"
	db, err := LoadXML(probeDir, strings.NewReader(crashDoc), nil)
	if err != nil {
		t.Fatal(err)
	}
	baseEpoch := db.Epoch()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	counter := faultfs.New(vfs.OS)
	if err := crashWorkload(probeDir, counter); err != nil {
		t.Fatal(err)
	}
	total := counter.Ops()
	if total < 10 {
		t.Fatalf("workload performed only %d mutating ops; sweep is vacuous", total)
	}
	t.Logf("sweeping %d fault points × 2 modes (n0=%d n1=%d baseEpoch=%d)", total, n0, n1, baseEpoch)

	for _, mode := range []faultfs.Mode{faultfs.ErrOp, faultfs.ShortWrite} {
		modeName := map[faultfs.Mode]string{faultfs.ErrOp: "errop", faultfs.ShortWrite: "shortwrite"}[mode]
		for i := int64(1); i <= total; i++ {
			i, mode := i, mode
			t.Run(fmt.Sprintf("%s/op%03d", modeName, i), func(t *testing.T) {
				dir := t.TempDir() + "/db"
				db, err := LoadXML(dir, strings.NewReader(crashDoc), nil)
				if err != nil {
					t.Fatal(err)
				}
				if err := db.Close(); err != nil {
					t.Fatal(err)
				}

				ffs := faultfs.New(vfs.OS)
				ffs.FailAt(i, mode)
				werr := crashWorkload(dir, ffs)
				if !ffs.Crashed() {
					t.Fatalf("fault at op %d never fired (workload err: %v)", i, werr)
				}
				if werr == nil {
					t.Fatalf("workload survived a crash at op %d", i)
				}

				// The store must reopen on the real file system, recovery
				// must land on a committed state, and deep verification
				// must find nothing wrong.
				re, err := Open(dir, nil)
				if err != nil {
					t.Fatalf("reopen after crash at op %d: %v", i, err)
				}
				defer re.Close()
				res := re.Verify(true)
				for _, is := range res.Issues {
					t.Errorf("verify after crash at op %d: %s", i, is)
				}
				n := re.NodeCount()
				if n != n0 && n != n1 {
					t.Errorf("node count %d after crash at op %d; want %d (pre/post-delete) or %d (post-insert)", n, i, n0, n1)
				}
				e := re.Epoch()
				if e < baseEpoch || e > baseEpoch+2 {
					t.Errorf("epoch %d after crash at op %d; want within [%d, %d]", e, i, baseEpoch, baseEpoch+2)
				}
				// The recovered epoch and the recovered content must name the
				// same commit: epoch base+1 is the post-insert state, base
				// and base+2 the one-book states around it.
				wantN := n0
				if e == baseEpoch+1 {
					wantN = n1
				}
				if n != wantN {
					t.Errorf("epoch %d with node count %d after crash at op %d: epoch and content disagree", e, n, i)
				}
				// COW recovery leaves no MVCC debris: one live version, any
				// pages a torn transaction wrote swept into the free list,
				// none unaccounted.
				mi := re.MVCCInfo()
				if mi.LiveVersions != 1 || mi.OrphanPages != 0 {
					t.Errorf("MVCC state after crash at op %d: %+v", i, mi)
				}
				// The recovered store must accept new commits.
				if err := re.InsertFragment(dewey.Root(), strings.NewReader(crashFragment)); err != nil {
					t.Errorf("insert after recovery from crash at op %d: %v", i, err)
				} else if got := re.Epoch(); got != e+1 {
					t.Errorf("epoch %d after post-recovery insert, want %d", got, e+1)
				}
			})
		}
	}
}

// TestCrashDuringLoadSweep covers the initial bulk load: a crash at any
// point before the manifest commit must leave a directory that Open
// rejects cleanly with ErrNoManifest (never a half-built store that opens
// as valid); a crash after the commit point must open and verify clean.
func TestCrashDuringLoadSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep re-runs the load once per fault point")
	}

	counter := faultfs.New(vfs.OS)
	dir := t.TempDir() + "/probe"
	db, err := LoadXML(dir, strings.NewReader(crashDoc), &Options{FS: counter})
	if err != nil {
		t.Fatal(err)
	}
	wantNodes := db.NodeCount()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	total := counter.Ops()
	t.Logf("sweeping %d load fault points", total)

	for i := int64(1); i <= total; i++ {
		i := i
		t.Run(fmt.Sprintf("op%03d", i), func(t *testing.T) {
			dir := t.TempDir() + "/db"
			ffs := faultfs.New(vfs.OS)
			ffs.FailAt(i, faultfs.ErrOp)
			db, err := LoadXML(dir, strings.NewReader(crashDoc), &Options{FS: ffs})
			if err == nil {
				err = db.Close()
			}
			if !ffs.Crashed() {
				t.Fatalf("fault at op %d never fired (load err: %v)", i, err)
			}

			re, openErr := Open(dir, nil)
			if openErr != nil {
				if !errors.Is(openErr, ErrNoManifest) {
					t.Fatalf("reopen after load crash at op %d: %v, want ErrNoManifest", i, openErr)
				}
				return
			}
			// Crash after the commit point: the store must be whole.
			defer re.Close()
			res := re.Verify(true)
			for _, is := range res.Issues {
				t.Errorf("verify after load crash at op %d: %s", i, is)
			}
			if n := re.NodeCount(); n != wantNodes {
				t.Errorf("node count %d after load crash at op %d, want %d", n, i, wantNodes)
			}
		})
	}
}

// TestCrashRecoveryReporting spot-checks that RecoveryInfo reflects what
// recovery actually did after a mid-update crash.
func TestCrashRecoveryReporting(t *testing.T) {
	dir := t.TempDir() + "/db"
	db, err := LoadXML(dir, strings.NewReader(samples.Bibliography), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash somewhere in the middle of the insert's write traffic.
	ffs := faultfs.New(vfs.OS)
	ffs.FailAt(20, faultfs.ShortWrite)
	if err := crashWorkload(dir, ffs); err == nil {
		t.Fatal("workload survived an armed fault")
	}

	re, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rec := re.Recovery()
	if !rec.Recovered() {
		t.Error("recovery after a mid-update crash reported nothing to do")
	}
	if res := re.Verify(true); !res.OK() {
		for _, is := range res.Issues {
			t.Errorf("verify: %s", is)
		}
	}
}
