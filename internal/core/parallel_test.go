package core

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// parallelFixture builds a document big enough (at 256-byte pages) that
// the planner's EstTotalPages clears ParallelPageThreshold, with queries
// whose pattern trees partition into several independent NoK subtrees.
func parallelFixture(t *testing.T) *DB {
	t.Helper()
	var b strings.Builder
	b.WriteString("<lib>")
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&b,
			"<book year=\"%d\"><title>t%d</title><author><last>a%d</last></author><price>%d</price><publisher>p%d</publisher></book>",
			1990+i%30, i, i%40, i%150, i%7)
	}
	b.WriteString("</lib>")
	db := loadDB(t, b.String(), smallPages())
	if err := db.RefreshSynopsis(); err != nil {
		t.Fatalf("RefreshSynopsis: %v", err)
	}
	return db
}

var parallelQueries = []string{
	// Three global links off //book: author-subtree, price, publisher.
	`//book[author//last="a3"][.//price<50]//title`,
	`//book[.//last="a1"][.//publisher="p2"]`,
	`//book[.//title="t17"][.//price=17]//last`,
	`//lib//book[.//last="a5"][.//price<10]`,
}

// TestParallelMatchesSequential pins the parallel bottom-up phase to the
// sequential one: same query, same store, byte-identical ID lists — and
// checks the parallel path actually ran (stats.Parallel), so the gate and
// the fixture stay in sync.
func TestParallelMatchesSequential(t *testing.T) {
	db := parallelFixture(t)
	ranParallel := false
	for _, expr := range parallelQueries {
		seq, _, err := db.Query(expr, &QueryOptions{DisableParallel: true})
		if err != nil {
			t.Fatalf("sequential %s: %v", expr, err)
		}
		par, stats, err := db.Query(expr, nil)
		if err != nil {
			t.Fatalf("parallel %s: %v", expr, err)
		}
		if stats.Parallel {
			ranParallel = true
			if len(stats.PartitionTimings) == 0 {
				t.Errorf("%s: parallel run recorded no partition timings", expr)
			}
		}
		if len(seq) != len(par) {
			t.Fatalf("%s: sequential %d results, parallel %d", expr, len(seq), len(par))
		}
		for i := range seq {
			if seq[i].ID.String() != par[i].ID.String() {
				t.Fatalf("%s: result %d differs: %s vs %s", expr, i, seq[i].ID, par[i].ID)
			}
		}
	}
	if !ranParallel {
		t.Fatalf("no query took the parallel path; gate or fixture out of sync")
	}
}

// TestParallelErrorPropagates cancels mid-evaluation and checks the first
// error wins and all workers join (the -race build verifies the join).
func TestParallelErrorPropagates(t *testing.T) {
	db := parallelFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := db.Query(parallelQueries[0], &QueryOptions{Ctx: ctx})
	if err == nil {
		t.Fatal("cancelled parallel query returned nil error")
	}
}
