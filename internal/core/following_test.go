package core

import (
	"strings"
	"testing"

	"nok/internal/domnav"
	"nok/internal/samples"
)

// TestFollowingAxis exercises the paper's ◀ global axis end to end: the
// parser's following:: syntax, partitioning (a Following link), the
// bottom-up ExistsAfter predicate and the top-down AfterAny join.
func TestFollowingAxis(t *testing.T) {
	xml := `<r>
	  <a><x>1</x></a>
	  <mark/>
	  <a><x>2</x></a>
	  <b><x>3</x></b>
	  <mark/>
	  <a><x>4</x></a>
	</r>`
	db := loadDB(t, xml, smallPages())
	doc := domnav.MustParse(xml)
	for _, q := range []string{
		`//mark/following::a`,     // a's after any mark
		`//mark/following::a/x`,   // their x children
		`//a/following::mark`,     // marks after any a
		`//b/following::a`,        // the last a only
		`//a[x="4"]/following::a`, // nothing follows the last a
		`//mark/following::*`,     // everything after a mark
		`/r/a/following::b`,       // b follows the first two a's
	} {
		checkAgainstOracle(t, db, doc, q)
	}
}

func TestFollowingAxisOnBibliography(t *testing.T) {
	db := loadDB(t, samples.Bibliography, smallPages())
	doc := domnav.MustParse(samples.Bibliography)
	for _, q := range []string{
		`//author/following::price`,
		`//book[@year="1992"]/following::title`,
		`//editor/following::book`,
	} {
		checkAgainstOracle(t, db, doc, q)
	}
}

// TestPageSkipCounted checks that the per-query PagesScanned/PagesSkipped
// stats observe the (st,lo,hi) page-skip optimization: a FOLLOWING-SIBLING
// hop over a deep subtree must skip at least one page with skipping on, and
// skip exactly zero (with identical results) when DisablePageSkip is set.
func TestPageSkipCounted(t *testing.T) {
	// Each <a> holds a <junk> subtree deep enough to fill interior pages
	// whose level range stays above the sibling level, followed by the <x>
	// the query wants; reaching <x> requires a FOLLOWING-SIBLING scan past
	// <junk>. With 256-byte pages the deep chain spans several pages that
	// the header table can rule out without I/O.
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 2; i++ {
		sb.WriteString("<a><junk>")
		for j := 0; j < 300; j++ {
			sb.WriteString("<d>")
		}
		for j := 0; j < 300; j++ {
			sb.WriteString("</d>")
		}
		sb.WriteString("</junk><x/></a>")
	}
	sb.WriteString("</r>")
	xml := sb.String()

	db := loadDB(t, xml, smallPages())
	doc := domnav.MustParse(xml)
	const q = `//a/x`
	checkAgainstOracle(t, db, doc, q)

	withSkip, stats, err := db.Query(q, nil)
	if err != nil {
		t.Fatalf("Query(%q): %v", q, err)
	}
	if len(withSkip) != 2 {
		t.Fatalf("Query(%q) = %d matches, want 2", q, len(withSkip))
	}
	if stats.PagesSkipped == 0 {
		t.Errorf("PagesSkipped = 0, want > 0 (scanned %d pages)", stats.PagesScanned)
	}
	if stats.PagesScanned == 0 {
		t.Errorf("PagesScanned = 0, want > 0")
	}

	noSkip, noStats, err := db.Query(q, &QueryOptions{DisablePageSkip: true})
	if err != nil {
		t.Fatalf("Query(%q) without skipping: %v", q, err)
	}
	if noStats.PagesSkipped != 0 {
		t.Errorf("PagesSkipped = %d with DisablePageSkip, want 0", noStats.PagesSkipped)
	}
	if noStats.PagesScanned <= stats.PagesScanned {
		t.Errorf("PagesScanned without skipping = %d, want > %d (the skipped pages must be examined instead)",
			noStats.PagesScanned, stats.PagesScanned)
	}
	if len(noSkip) != len(withSkip) {
		t.Fatalf("DisablePageSkip changed the result: %d vs %d matches", len(noSkip), len(withSkip))
	}
	for i := range noSkip {
		if noSkip[i].Pos != withSkip[i].Pos {
			t.Fatalf("DisablePageSkip changed match %d: %v vs %v", i, noSkip[i].Pos, withSkip[i].Pos)
		}
	}
}

func TestPrecedingSiblingAxis(t *testing.T) {
	xml := `<r><s><a/><b/></s><s><b/><a/></s><s><b/></s></r>`
	db := loadDB(t, xml, smallPages())
	doc := domnav.MustParse(xml)
	for _, q := range []string{
		`/r/s/b/preceding-sibling::a`, // a before b: only in the first s
		`/r/s/a/preceding-sibling::b`, // b before a: only in the second s
		`//s[b/preceding-sibling::a]`,
	} {
		checkAgainstOracle(t, db, doc, q)
	}
}
