package core

import (
	"testing"

	"nok/internal/domnav"
	"nok/internal/samples"
)

// TestFollowingAxis exercises the paper's ◀ global axis end to end: the
// parser's following:: syntax, partitioning (a Following link), the
// bottom-up ExistsAfter predicate and the top-down AfterAny join.
func TestFollowingAxis(t *testing.T) {
	xml := `<r>
	  <a><x>1</x></a>
	  <mark/>
	  <a><x>2</x></a>
	  <b><x>3</x></b>
	  <mark/>
	  <a><x>4</x></a>
	</r>`
	db := loadDB(t, xml, smallPages())
	doc := domnav.MustParse(xml)
	for _, q := range []string{
		`//mark/following::a`,     // a's after any mark
		`//mark/following::a/x`,   // their x children
		`//a/following::mark`,     // marks after any a
		`//b/following::a`,        // the last a only
		`//a[x="4"]/following::a`, // nothing follows the last a
		`//mark/following::*`,     // everything after a mark
		`/r/a/following::b`,       // b follows the first two a's
	} {
		checkAgainstOracle(t, db, doc, q)
	}
}

func TestFollowingAxisOnBibliography(t *testing.T) {
	db := loadDB(t, samples.Bibliography, smallPages())
	doc := domnav.MustParse(samples.Bibliography)
	for _, q := range []string{
		`//author/following::price`,
		`//book[@year="1992"]/following::title`,
		`//editor/following::book`,
	} {
		checkAgainstOracle(t, db, doc, q)
	}
}

func TestPrecedingSiblingAxis(t *testing.T) {
	xml := `<r><s><a/><b/></s><s><b/><a/></s><s><b/></s></r>`
	db := loadDB(t, xml, smallPages())
	doc := domnav.MustParse(xml)
	for _, q := range []string{
		`/r/s/b/preceding-sibling::a`, // a before b: only in the first s
		`/r/s/a/preceding-sibling::b`, // b before a: only in the second s
		`//s[b/preceding-sibling::a]`,
	} {
		checkAgainstOracle(t, db, doc, q)
	}
}
