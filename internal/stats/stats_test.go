package stats

import (
	"math/rand"
	"testing"

	"nok/internal/symtab"
)

// buildSample feeds the builder this small document:
//
//	<a>            level 1
//	  <b>x</b>     level 2, value
//	  <b>x</b>     level 2, value
//	  <c>          level 2
//	    <b>y</b>   level 3, value
//	  </c>
//	</a>
func buildSample() *Synopsis {
	const (
		a = symtab.Sym(1)
		b = symtab.Sym(2)
		c = symtab.Sym(3)
	)
	bd := NewBuilder()
	bd.Node(a, 1)
	bd.Node(b, 2)
	bd.Value(2, 100)
	bd.Node(b, 2)
	bd.Value(2, 100)
	bd.Node(c, 2)
	bd.Node(b, 3)
	bd.Value(3, 200)
	return bd.Finish(7, 3)
}

func TestBuilderCounts(t *testing.T) {
	s := buildSample()
	if s.Epoch != 7 || s.TreePages != 3 {
		t.Errorf("epoch/pages = %d/%d, want 7/3", s.Epoch, s.TreePages)
	}
	if s.TotalNodes != 5 || s.ValueNodes != 3 || s.MaxDepth != 3 {
		t.Errorf("totals = %d nodes, %d values, depth %d; want 5, 3, 3", s.TotalNodes, s.ValueNodes, s.MaxDepth)
	}
	if got := s.TagCount(2); got != 3 {
		t.Errorf("count(b) = %d, want 3", got)
	}
	if got := s.TagCount(9); got != 0 {
		t.Errorf("count(unseen) = %d, want 0", got)
	}
	bStat := s.Tags[2]
	if bStat.WithValue != 3 || bStat.MaxDepth != 3 || bStat.SumDepth != 7 {
		t.Errorf("b stat = %+v", bStat)
	}
	// a has 3 children, c has 1.
	if s.Tags[1].AvgFanout() != 3 || s.Tags[3].AvgFanout() != 1 {
		t.Errorf("fanout(a)=%v fanout(c)=%v", s.Tags[1].AvgFanout(), s.Tags[3].AvgFanout())
	}

	// Path cardinalities: /a=1, /a/b=2, /a/c=1, /a/c/b=1.
	h := ExtendPath(PathSeed, 1)
	if n, ok := s.PathCount(h); !ok || n != 1 {
		t.Errorf("count(/a) = %d,%v", n, ok)
	}
	if n, ok := s.PathCount(ExtendPath(h, 2)); !ok || n != 2 {
		t.Errorf("count(/a/b) = %d,%v", n, ok)
	}
	if n, ok := s.PathCount(ExtendPath(ExtendPath(h, 3), 2)); !ok || n != 1 {
		t.Errorf("count(/a/c/b) = %d,%v", n, ok)
	}
	// Untruncated summary: an absent path definitely has zero nodes.
	if n, ok := s.PathCount(12345); !ok || n != 0 {
		t.Errorf("count(absent) = %d,%v, want 0,true", n, ok)
	}

	// Value sketch: "x" appears twice, "y" once; count-min never undercounts.
	if est := s.ValueEstimate(100); est < 2 {
		t.Errorf("estimate(x) = %d, want >= 2", est)
	}
	if est := s.ValueEstimate(200); est < 1 {
		t.Errorf("estimate(y) = %d, want >= 1", est)
	}

	ranks := s.TopTags(2)
	if len(ranks) != 2 || ranks[0].Sym != 2 || ranks[0].Count != 3 {
		t.Errorf("top tags = %+v", ranks)
	}
}

func TestBuilderMalformedLevels(t *testing.T) {
	b := NewBuilder()
	b.Node(1, 1)
	b.Node(2, 5) // skips levels: dropped
	b.Value(9, 1)
	b.Value(0, 1)
	s := b.Finish(1, 1)
	if s.TotalNodes != 1 || s.ValueNodes != 0 {
		t.Errorf("malformed stream leaked into synopsis: %+v", s)
	}
}

func TestPathTruncation(t *testing.T) {
	b := NewBuilder()
	b.maxPaths = 4
	b.Node(1, 1)
	for sym := symtab.Sym(2); sym < 10; sym++ {
		b.Node(sym, 2)
	}
	s := b.Finish(1, 1)
	if !s.PathsTruncated || len(s.Paths) != 4 {
		t.Fatalf("truncated=%v paths=%d, want true, 4", s.PathsTruncated, len(s.Paths))
	}
	// A recorded path still answers definitively; an unknown one reports
	// "don't know" instead of zero.
	if _, ok := s.PathCount(ExtendPath(PathSeed, 1)); !ok {
		t.Error("recorded path reported unknown")
	}
	unknown := ExtendPath(ExtendPath(PathSeed, 1), 9)
	if _, ok := s.PathCount(unknown); ok {
		t.Error("truncated-away path reported definite")
	}
}

func TestSketchNeverUndercounts(t *testing.T) {
	rng := rand.New(rand.NewSource(20040301))
	sk := NewSketch(64) // deliberately tiny to force collisions
	truth := make(map[uint64]uint64)
	for i := 0; i < 5000; i++ {
		h := uint64(rng.Intn(300))*0x9e3779b97f4a7c15 + 1
		truth[h]++
		sk.Add(h)
	}
	for h, n := range truth {
		if est := sk.Estimate(h); est < n {
			t.Fatalf("estimate(%#x) = %d < true count %d", h, est, n)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	s := buildSample()
	got, err := Decode(Encode(s))
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != s.Epoch || got.TotalNodes != s.TotalNodes || got.TreePages != s.TreePages ||
		got.MaxDepth != s.MaxDepth || got.ValueNodes != s.ValueNodes || got.PathsTruncated != s.PathsTruncated {
		t.Errorf("header mismatch: %+v vs %+v", got, s)
	}
	if len(got.Tags) != len(s.Tags) || len(got.Paths) != len(s.Paths) {
		t.Fatalf("sizes: %d tags %d paths, want %d/%d", len(got.Tags), len(got.Paths), len(s.Tags), len(s.Paths))
	}
	for sym, want := range s.Tags {
		if g := got.Tags[sym]; g == nil || *g != *want {
			t.Errorf("tag %d: %+v want %+v", sym, g, want)
		}
	}
	for h, want := range s.Paths {
		g := got.Paths[h]
		if g == nil || g.Count != want.Count || len(g.Syms) != len(want.Syms) {
			t.Errorf("path %#x: %+v want %+v", h, g, want)
		}
	}
	for _, h := range []uint64{100, 200, 999} {
		if got.ValueEstimate(h) != s.ValueEstimate(h) {
			t.Errorf("sketch estimate(%d) changed across roundtrip", h)
		}
	}
}

func TestCodecRejectsCorruption(t *testing.T) {
	enc := Encode(buildSample())
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("NOPE!!"), enc[6:]...),
		"short":       enc[:len(enc)-5],
		"trailing":    append(append([]byte{}, enc...), 0),
		"flipped bit": flipBit(enc, len(enc)/2),
		"flipped crc": flipBit(enc, len(codecMagic)+1),
	}
	for name, raw := range cases {
		if _, err := Decode(raw); err == nil {
			t.Errorf("%s: Decode accepted corrupt input", name)
		}
	}
}

func flipBit(b []byte, i int) []byte {
	out := append([]byte{}, b...)
	out[i] ^= 0x40
	return out
}
