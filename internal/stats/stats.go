// Package stats maintains the persistent statistics synopsis behind the
// cost-based query planner (internal/planner): per-tag element counts with
// depth and fan-out summaries, a path summary (distinct root-to-node tag
// paths with cardinalities, keyed by the same incremental FNV-1a hash the
// path index uses), and a count-min sketch estimating the selectivity of
// indexed values. The synopsis is collected in the same pass that builds
// the store (bulk load, or the index-rebuild scan after an update), so it
// is always committed at the store's epoch; a synopsis whose epoch differs
// from the store's is stale and the planner falls back to the §6.2
// heuristic.
//
// The design follows Arion et al., "Path Summaries and Path Partitioning
// in Modern XML Databases" (see PAPERS.md): a path summary small enough to
// keep in memory, with per-path cardinalities, suffices to choose access
// paths robustly.
package stats

import "nok/internal/symtab"

// PathSeed is the FNV-1a offset basis; path hashes fold tag symbols in
// root-to-node order, so the hash of a path extends its parent's. This is
// the canonical definition shared with the path index (internal/core).
const PathSeed = uint64(14695981039346656037)

const fnvPrime = uint64(1099511628211)

// ExtendPath folds one more tag symbol into a path hash.
func ExtendPath(h uint64, sym symtab.Sym) uint64 {
	h ^= uint64(sym & 0xFF)
	h *= fnvPrime
	h ^= uint64(sym >> 8)
	h *= fnvPrime
	return h
}

// MaxPaths caps the path summary. Documents with more distinct root-to-node
// tag paths (deeply recursive schemas) keep the most-frequently-seen-first
// prefix and set PathsTruncated; the planner then treats unknown paths as
// unestimatable rather than empty.
const MaxPaths = 4096

// TagStat summarizes one tag name across the document.
type TagStat struct {
	// Count is the number of element nodes with this tag.
	Count uint64
	// WithValue counts nodes of this tag carrying a text value.
	WithValue uint64
	// SumDepth accumulates node depths (root = 1); AvgDepth() derives the
	// mean. MaxDepth is the deepest occurrence.
	SumDepth uint64
	MaxDepth uint32
	// SumChildren accumulates the child counts of nodes with this tag;
	// AvgFanout() derives the mean fan-out.
	SumChildren uint64
}

// AvgDepth returns the mean depth of this tag's nodes (0 when unseen).
func (t *TagStat) AvgDepth() float64 {
	if t.Count == 0 {
		return 0
	}
	return float64(t.SumDepth) / float64(t.Count)
}

// AvgFanout returns the mean number of children of this tag's nodes.
func (t *TagStat) AvgFanout() float64 {
	if t.Count == 0 {
		return 0
	}
	return float64(t.SumChildren) / float64(t.Count)
}

// PathStat is one entry of the path summary: a distinct root-to-node tag
// path and how many nodes lie on it.
type PathStat struct {
	// Syms is the tag-symbol sequence from the document root (inclusive)
	// down to the path's end.
	Syms  []symtab.Sym
	Count uint64
}

// Synopsis is the persistent statistics snapshot of one store epoch.
type Synopsis struct {
	// Epoch is the store epoch the synopsis was built at; a mismatch with
	// the store's committed epoch marks the synopsis stale.
	Epoch uint64

	TotalNodes uint64
	// TreePages is the string tree's page count — the planner's unit cost
	// for a full scan.
	TreePages uint64
	MaxDepth  uint32
	// ValueNodes counts nodes with a text value (= value-index entries).
	ValueNodes uint64

	Tags map[symtab.Sym]*TagStat
	// Paths maps path hash → path summary entry. PathsTruncated records
	// that the document had more distinct paths than MaxPaths.
	Paths          map[uint64]*PathStat
	PathsTruncated bool

	// Values estimates per-value occurrence counts (count-min: estimates
	// never undercount).
	Values *Sketch
}

// TagCount returns the node count of a tag (0 when absent).
func (s *Synopsis) TagCount(sym symtab.Sym) uint64 {
	if t, ok := s.Tags[sym]; ok {
		return t.Count
	}
	return 0
}

// PathCount returns the cardinality of the path with the given hash. ok is
// false only when the summary was truncated and the path is unknown; with
// an untruncated summary an absent path definitely has zero nodes.
func (s *Synopsis) PathCount(hash uint64) (uint64, bool) {
	if p, ok := s.Paths[hash]; ok {
		return p.Count, true
	}
	if s.PathsTruncated {
		return 0, false
	}
	return 0, true
}

// ValueEstimate returns an upper-bound estimate of how many nodes carry
// the value with the given hash.
func (s *Synopsis) ValueEstimate(hash uint64) uint64 {
	if s.Values == nil {
		return s.ValueNodes
	}
	return s.Values.Estimate(hash)
}

// TagRank is one row of TopTags.
type TagRank struct {
	Sym   symtab.Sym
	Count uint64
}

// TopTags returns the n most frequent tags, most frequent first (ties
// broken by symbol for determinism).
func (s *Synopsis) TopTags(n int) []TagRank {
	out := make([]TagRank, 0, len(s.Tags))
	for sym, t := range s.Tags {
		out = append(out, TagRank{Sym: sym, Count: t.Count})
	}
	sortRanks(out)
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

func sortRanks(rs []TagRank) {
	// Insertion sort: tag alphabets are small (hundreds at most).
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0; j-- {
			a, b := rs[j-1], rs[j]
			if a.Count > b.Count || (a.Count == b.Count && a.Sym <= b.Sym) {
				break
			}
			rs[j-1], rs[j] = b, a
		}
	}
}

// frame is one open element on the builder's path stack.
type frame struct {
	sym  symtab.Sym
	hash uint64
}

// Builder accumulates a Synopsis from a document-order node stream — the
// SAX pass of a bulk load or the string-tree scan of an index rebuild.
// Feed it Node(sym, level) for every element in document order (level 1 =
// document root) and Value(level, hash) for every node with a text value
// (any time after its Node call), then Finish.
type Builder struct {
	syn      *Synopsis
	stack    []frame
	maxPaths int
}

// NewBuilder returns an empty Builder with the default path cap.
func NewBuilder() *Builder {
	return &Builder{
		syn: &Synopsis{
			Tags:   make(map[symtab.Sym]*TagStat),
			Paths:  make(map[uint64]*PathStat),
			Values: NewSketch(0),
		},
		maxPaths: MaxPaths,
	}
}

func (b *Builder) tag(sym symtab.Sym) *TagStat {
	t, ok := b.syn.Tags[sym]
	if !ok {
		t = &TagStat{}
		b.syn.Tags[sym] = t
	}
	return t
}

// Node records one element at the given depth (document root = 1). Calls
// must arrive in document order; the builder maintains the path stack by
// truncating it to level-1 before pushing.
func (b *Builder) Node(sym symtab.Sym, level int) {
	if level < 1 || level > len(b.stack)+1 {
		return // malformed stream; never produced by the store's scans
	}
	b.stack = b.stack[:level-1]
	parentHash := PathSeed
	if level >= 2 {
		p := b.stack[level-2]
		parentHash = p.hash
		b.tag(p.sym).SumChildren++
	}
	h := ExtendPath(parentHash, sym)
	b.stack = append(b.stack, frame{sym: sym, hash: h})

	t := b.tag(sym)
	t.Count++
	t.SumDepth += uint64(level)
	if uint32(level) > t.MaxDepth {
		t.MaxDepth = uint32(level)
	}
	s := b.syn
	s.TotalNodes++
	if uint32(level) > s.MaxDepth {
		s.MaxDepth = uint32(level)
	}
	if ps, ok := s.Paths[h]; ok {
		ps.Count++
	} else if len(s.Paths) < b.maxPaths {
		syms := make([]symtab.Sym, level)
		for i, f := range b.stack {
			syms[i] = f.sym
		}
		s.Paths[h] = &PathStat{Syms: syms, Count: 1}
	} else {
		s.PathsTruncated = true
	}
}

// Value records that the element at the given level (the one most recently
// opened there) carries a text value with the given vstore hash.
func (b *Builder) Value(level int, valueHash uint64) {
	if level < 1 || level > len(b.stack) {
		return
	}
	b.tag(b.stack[level-1].sym).WithValue++
	b.syn.ValueNodes++
	b.syn.Values.Add(valueHash)
}

// Finish stamps the synopsis with the store epoch and tree page count and
// returns it. The builder must not be reused afterwards.
func (b *Builder) Finish(epoch, treePages uint64) *Synopsis {
	b.syn.Epoch = epoch
	b.syn.TreePages = treePages
	b.stack = nil
	return b.syn
}
