package stats

// codec.go — the synopsis wire format, following the store's file
// conventions (see internal/core/manifest.go): a magic header, a CRC32C
// over the payload, and big-endian fixed-width fields. Path entries store
// the tag-symbol sequence only; the hash key is recomputed on decode, so a
// corrupted hash can never go undetected past the checksum.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"nok/internal/symtab"
)

const codecMagic = "NOKSY1"

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a synopsis file that fails its checksum or does not
// parse; callers treat it as "no synopsis" and fall back to the heuristic.
var ErrCorrupt = errors.New("stats: synopsis corrupt")

// Encode serializes the synopsis.
func Encode(s *Synopsis) []byte {
	var p []byte
	u16 := func(v uint16) { p = binary.BigEndian.AppendUint16(p, v) }
	u32 := func(v uint32) { p = binary.BigEndian.AppendUint32(p, v) }
	u64 := func(v uint64) { p = binary.BigEndian.AppendUint64(p, v) }

	u64(s.Epoch)
	u64(s.TotalNodes)
	u64(s.TreePages)
	u32(s.MaxDepth)
	u64(s.ValueNodes)
	if s.PathsTruncated {
		p = append(p, 1)
	} else {
		p = append(p, 0)
	}
	u32(uint32(len(s.Tags)))
	u32(uint32(len(s.Paths)))
	p = append(p, sketchRows)
	width := 0
	if s.Values != nil {
		width = s.Values.Width()
	}
	u32(uint32(width))

	syms := make([]symtab.Sym, 0, len(s.Tags))
	for sym := range s.Tags {
		syms = append(syms, sym)
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
	for _, sym := range syms {
		t := s.Tags[sym]
		u16(uint16(sym))
		u64(t.Count)
		u64(t.WithValue)
		u64(t.SumDepth)
		u32(t.MaxDepth)
		u64(t.SumChildren)
	}

	hashes := make([]uint64, 0, len(s.Paths))
	for h := range s.Paths {
		hashes = append(hashes, h)
	}
	sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })
	for _, h := range hashes {
		ps := s.Paths[h]
		u64(ps.Count)
		u16(uint16(len(ps.Syms)))
		for _, sym := range ps.Syms {
			u16(uint16(sym))
		}
	}

	if s.Values != nil {
		for i := range s.Values.rows {
			for _, c := range s.Values.rows[i] {
				u32(c)
			}
		}
	}

	out := make([]byte, 0, len(codecMagic)+4+len(p))
	out = append(out, codecMagic...)
	out = binary.BigEndian.AppendUint32(out, crc32.Checksum(p, castagnoli))
	return append(out, p...)
}

// Decode parses an encoded synopsis, verifying the checksum.
func Decode(raw []byte) (*Synopsis, error) {
	head := len(codecMagic) + 4
	if len(raw) < head || string(raw[:len(codecMagic)]) != codecMagic {
		return nil, fmt.Errorf("%w: bad header", ErrCorrupt)
	}
	want := binary.BigEndian.Uint32(raw[len(codecMagic):head])
	p := raw[head:]
	if crc32.Checksum(p, castagnoli) != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}

	short := fmt.Errorf("%w: truncated payload", ErrCorrupt)
	need := func(n int) bool { return len(p) >= n }
	u16 := func() uint16 { v := binary.BigEndian.Uint16(p); p = p[2:]; return v }
	u32 := func() uint32 { v := binary.BigEndian.Uint32(p); p = p[4:]; return v }
	u64 := func() uint64 { v := binary.BigEndian.Uint64(p); p = p[8:]; return v }

	if !need(8 + 8 + 8 + 4 + 8 + 1 + 4 + 4 + 1 + 4) {
		return nil, short
	}
	s := &Synopsis{
		Tags:  make(map[symtab.Sym]*TagStat),
		Paths: make(map[uint64]*PathStat),
	}
	s.Epoch = u64()
	s.TotalNodes = u64()
	s.TreePages = u64()
	s.MaxDepth = u32()
	s.ValueNodes = u64()
	s.PathsTruncated = p[0] == 1
	p = p[1:]
	nTags := int(u32())
	nPaths := int(u32())
	rows := int(p[0])
	p = p[1:]
	width := int(u32())
	if rows != sketchRows {
		return nil, fmt.Errorf("%w: sketch has %d rows, this build reads %d", ErrCorrupt, rows, sketchRows)
	}

	for i := 0; i < nTags; i++ {
		if !need(2 + 8 + 8 + 8 + 4 + 8) {
			return nil, short
		}
		sym := symtab.Sym(u16())
		t := &TagStat{}
		t.Count = u64()
		t.WithValue = u64()
		t.SumDepth = u64()
		t.MaxDepth = u32()
		t.SumChildren = u64()
		s.Tags[sym] = t
	}

	for i := 0; i < nPaths; i++ {
		if !need(8 + 2) {
			return nil, short
		}
		count := u64()
		n := int(u16())
		if !need(2 * n) {
			return nil, short
		}
		ps := &PathStat{Syms: make([]symtab.Sym, n), Count: count}
		h := PathSeed
		for j := 0; j < n; j++ {
			ps.Syms[j] = symtab.Sym(u16())
			h = ExtendPath(h, ps.Syms[j])
		}
		s.Paths[h] = ps
	}

	if width > 0 {
		if !need(rows * width * 4) {
			return nil, short
		}
		s.Values = NewSketch(width)
		for i := 0; i < rows; i++ {
			for j := 0; j < width; j++ {
				s.Values.rows[i][j] = u32()
			}
		}
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(p))
	}
	return s, nil
}
