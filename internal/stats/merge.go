package stats

import "nok/internal/symtab"

// This file makes the synopsis incrementally maintainable: every component
// (per-tag summaries, path cardinalities, the count-min sketch) is a sum,
// a max, or a mergeable sketch, so a delta collected over just the nodes a
// batch appends can be folded into the previous epoch's synopsis without
// rescanning the store. The ingest pipeline (internal/ingest) relies on
// this to keep the planner's statistics fresh under a continuous append
// stream — the alternative, a full-tree rebuild per commit, is exactly the
// cost group commit exists to amortize.

// NewDeltaBuilder returns a Builder whose path stack is pre-seeded with the
// ancestor chain of an insertion point: ancestors[0] is the document root's
// tag and the last element is the parent the new subtrees attach under.
// The seeded frames are NOT counted — only subsequent Node/Value calls
// accumulate into the delta — but they make path hashes and the parent's
// fan-out accounting come out exactly as a full rebuild would: the first
// Node call at level len(ancestors)+1 extends the parent's path hash and
// increments the parent tag's SumChildren.
func NewDeltaBuilder(ancestors []symtab.Sym) *Builder {
	b := NewBuilder()
	h := PathSeed
	for _, sym := range ancestors {
		h = ExtendPath(h, sym)
		b.stack = append(b.stack, frame{sym: sym, hash: h})
	}
	return b
}

// Delta returns the accumulated synopsis delta. Epoch and TreePages are
// left zero — Merge's caller stamps the merged result. The builder must
// not be reused afterwards.
func (b *Builder) Delta() *Synopsis {
	b.stack = nil
	return b.syn
}

// Merge folds a delta (from a DeltaBuilder over newly appended nodes) into
// prev, returning a fresh Synopsis; prev and delta are never mutated (prev
// is typically shared with live readers of the previous epoch). Epoch and
// TreePages of the result are zero — the caller stamps them at commit.
//
// Merge returns nil when the sketches are incompatible (missing or
// different widths); the caller must then fall back to a full rebuild.
// When prev covers every store node at the pre-append epoch, the merged
// result is element-for-element what a full rebuild would produce, with
// one caveat: if the combined path summary overflows MaxPaths, the set of
// retained paths may differ from a rebuild's document-order prefix (both
// set PathsTruncated, which is what the planner keys on).
func Merge(prev, delta *Synopsis) *Synopsis {
	if prev == nil || delta == nil {
		return nil
	}
	values := mergeSketches(prev.Values, delta.Values)
	if values == nil {
		return nil
	}
	out := &Synopsis{
		TotalNodes:     prev.TotalNodes + delta.TotalNodes,
		MaxDepth:       max32(prev.MaxDepth, delta.MaxDepth),
		ValueNodes:     prev.ValueNodes + delta.ValueNodes,
		Tags:           make(map[symtab.Sym]*TagStat, len(prev.Tags)+len(delta.Tags)),
		Paths:          make(map[uint64]*PathStat, len(prev.Paths)+len(delta.Paths)),
		PathsTruncated: prev.PathsTruncated || delta.PathsTruncated,
		Values:         values,
	}
	for sym, t := range prev.Tags {
		c := *t
		out.Tags[sym] = &c
	}
	for sym, d := range delta.Tags {
		t, ok := out.Tags[sym]
		if !ok {
			t = &TagStat{}
			out.Tags[sym] = t
		}
		t.Count += d.Count
		t.WithValue += d.WithValue
		t.SumDepth += d.SumDepth
		t.MaxDepth = max32(t.MaxDepth, d.MaxDepth)
		t.SumChildren += d.SumChildren
	}
	for h, p := range prev.Paths {
		// Syms slices are immutable once built; sharing them is safe.
		c := *p
		out.Paths[h] = &c
	}
	for h, d := range delta.Paths {
		if p, ok := out.Paths[h]; ok {
			p.Count += d.Count
		} else if len(out.Paths) < MaxPaths {
			c := *d
			out.Paths[h] = &c
		} else {
			out.PathsTruncated = true
		}
	}
	return out
}

func max32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}

// Clone returns a deep copy of the sketch.
func (s *Sketch) Clone() *Sketch {
	c := &Sketch{width: s.width}
	for i := range s.rows {
		c.rows[i] = make([]uint32, len(s.rows[i]))
		copy(c.rows[i], s.rows[i])
	}
	return c
}

// mergeSketches returns a fresh sketch holding the cell-wise saturating sum
// of a and b, or nil when they cannot be merged (either missing, or the
// widths differ so the index functions disagree). Because Add increments
// the same cells deterministically, the merged sketch is identical to one
// fed both input streams.
func mergeSketches(a, b *Sketch) *Sketch {
	if a == nil || b == nil || a.width != b.width {
		return nil
	}
	out := a.Clone()
	for i := range out.rows {
		row, add := out.rows[i], b.rows[i]
		for j := range row {
			if c := uint64(row[j]) + uint64(add[j]); c > uint64(^uint32(0)) {
				row[j] = ^uint32(0)
			} else {
				row[j] = uint32(c)
			}
		}
	}
	return out
}
