package stats

import (
	"bytes"
	"testing"

	"nok/internal/symtab"
)

// feed is one Node/Value script entry: level 0 marks a Value record for
// the most recent node at valueLevel.
type feed struct {
	sym        symtab.Sym
	level      int
	value      bool
	valueLevel int
	valueHash  uint64
}

func apply(b *Builder, fs []feed) {
	for _, f := range fs {
		if f.value {
			b.Value(f.valueLevel, f.valueHash)
		} else {
			b.Node(f.sym, f.level)
		}
	}
}

// TestMergeEqualsFullBuild is the core property the ingest path relies on:
// building a synopsis over old+new nodes in one pass must equal building
// the old part, collecting the new part in a seeded delta builder, and
// merging.
func TestMergeEqualsFullBuild(t *testing.T) {
	const root, a, b, c symtab.Sym = 1, 2, 3, 4
	old := []feed{
		{sym: root, level: 1},
		{sym: a, level: 2},
		{sym: b, level: 3},
		{value: true, valueLevel: 3, valueHash: 77},
		{sym: b, level: 3},
		{sym: a, level: 2},
		{value: true, valueLevel: 2, valueHash: 78},
	}
	// Appended under the root (level 2 roots), as batched ingest does:
	// repeats old tags, introduces a new one, carries values.
	app := []feed{
		{sym: a, level: 2},
		{sym: c, level: 3},
		{value: true, valueLevel: 3, valueHash: 77},
		{sym: c, level: 2},
		{sym: b, level: 3},
		{value: true, valueLevel: 3, valueHash: 99},
	}

	full := NewBuilder()
	apply(full, old)
	apply(full, app)
	want := full.Finish(7, 42)

	prevB := NewBuilder()
	apply(prevB, old)
	prev := prevB.Finish(6, 40)

	deltaB := NewDeltaBuilder([]symtab.Sym{root})
	apply(deltaB, app)
	got := Merge(prev, deltaB.Delta())
	if got == nil {
		t.Fatal("Merge returned nil for compatible inputs")
	}
	got.Epoch, got.TreePages = want.Epoch, want.TreePages

	if !bytes.Equal(Encode(got), Encode(want)) {
		t.Fatalf("merged synopsis differs from full build:\nmerged: %+v\nfull:   %+v", got, want)
	}
	// prev must be untouched (it is shared with pinned readers).
	if prev.TotalNodes != 5 || prev.Tags[root].SumChildren != 2 {
		t.Fatalf("Merge mutated prev: %+v", prev)
	}
}

// TestDeltaBuilderDeepSeed seeds below a nested parent and checks the
// parent's fan-out and the path hashes line up with a full build.
func TestDeltaBuilderDeepSeed(t *testing.T) {
	const root, mid, leaf symtab.Sym = 1, 2, 3
	old := []feed{
		{sym: root, level: 1},
		{sym: mid, level: 2},
		{sym: leaf, level: 3},
	}
	app := []feed{
		{sym: leaf, level: 3},
		{sym: leaf, level: 3},
	}
	full := NewBuilder()
	apply(full, old)
	apply(full, app)
	want := full.Finish(2, 10)

	prevB := NewBuilder()
	apply(prevB, old)
	prev := prevB.Finish(1, 10)

	deltaB := NewDeltaBuilder([]symtab.Sym{root, mid})
	apply(deltaB, app)
	got := Merge(prev, deltaB.Delta())
	got.Epoch, got.TreePages = want.Epoch, want.TreePages
	if !bytes.Equal(Encode(got), Encode(want)) {
		t.Fatalf("deep-seeded merge differs from full build")
	}
	if got.Tags[mid].SumChildren != 3 {
		t.Fatalf("mid fan-out = %d, want 3", got.Tags[mid].SumChildren)
	}
}

func TestSketchMerge(t *testing.T) {
	a, b := NewSketch(64), NewSketch(64)
	both := NewSketch(64)
	for h := uint64(0); h < 100; h++ {
		a.Add(h)
		both.Add(h)
	}
	for h := uint64(50); h < 120; h++ {
		b.Add(h)
		both.Add(h)
	}
	m := mergeSketches(a, b)
	if m == nil {
		t.Fatal("mergeSketches returned nil for same-width sketches")
	}
	for h := uint64(0); h < 120; h++ {
		if got, want := m.Estimate(h), both.Estimate(h); got != want {
			t.Fatalf("Estimate(%d) = %d after merge, want %d", h, got, want)
		}
	}
	// Inputs are untouched.
	if a.Estimate(10) != 1 || b.Estimate(60) != 1 {
		t.Fatal("mergeSketches mutated an input")
	}
	if mergeSketches(a, NewSketch(32)) != nil {
		t.Fatal("mergeSketches accepted differing widths")
	}
	if mergeSketches(nil, b) != nil || mergeSketches(a, nil) != nil {
		t.Fatal("mergeSketches accepted nil input")
	}
}

func TestMergeIncompatibleSketches(t *testing.T) {
	pb := NewBuilder()
	pb.Node(1, 1)
	prev := pb.Finish(1, 1)
	db := NewDeltaBuilder([]symtab.Sym{1})
	db.Node(2, 2)
	delta := db.Delta()
	delta.Values = NewSketch(7) // width differs from the default
	if Merge(prev, delta) != nil {
		t.Fatal("Merge accepted incompatible sketch widths")
	}
}

func TestMergePathOverflowSetsTruncated(t *testing.T) {
	pb := NewBuilder()
	pb.Node(1, 1)
	for i := 0; i < MaxPaths-1; i++ {
		pb.Node(symtab.Sym(i+2), 2)
	}
	prev := pb.Finish(1, 1)
	if prev.PathsTruncated {
		t.Fatal("prev unexpectedly truncated")
	}
	db := NewDeltaBuilder([]symtab.Sym{1})
	db.Node(symtab.Sym(MaxPaths+5), 2)
	db.Node(symtab.Sym(MaxPaths+6), 2)
	got := Merge(prev, db.Delta())
	if !got.PathsTruncated {
		t.Fatal("overflowing merge did not set PathsTruncated")
	}
	if len(got.Paths) != MaxPaths {
		t.Fatalf("merged path count = %d, want %d", len(got.Paths), MaxPaths)
	}
}
