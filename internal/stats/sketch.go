package stats

// Sketch is a count-min sketch over 64-bit value hashes: sketchRows rows
// of width counters, each row indexed by an independent mix of the hash.
// Estimates never undercount (every row's counter is incremented on Add;
// collisions only inflate), which is the safe direction for a planner —
// an overestimated value count makes the value index look worse, never
// spuriously attractive.
type Sketch struct {
	width uint32
	rows  [sketchRows][]uint32
}

const sketchRows = 4

// defaultSketchWidth bounds per-row collisions: with 2048 counters per row
// and four rows, a store with 100k distinct values keeps relative error in
// the low percents for the frequent values the planner cares about.
const defaultSketchWidth = 2048

// row seeds decorrelate the four index functions.
var sketchSeeds = [sketchRows]uint64{
	0x9e3779b97f4a7c15, 0xc2b2ae3d27d4eb4f, 0x165667b19e3779f9, 0x27d4eb2f165667c5,
}

// NewSketch returns an empty sketch; width 0 selects the default.
func NewSketch(width int) *Sketch {
	if width <= 0 {
		width = defaultSketchWidth
	}
	s := &Sketch{width: uint32(width)}
	for i := range s.rows {
		s.rows[i] = make([]uint32, width)
	}
	return s
}

// Width returns the per-row counter count.
func (s *Sketch) Width() int { return int(s.width) }

func (s *Sketch) idx(row int, h uint64) uint32 {
	return uint32(splitmix64(h^sketchSeeds[row]) % uint64(s.width))
}

// Add counts one occurrence of the hashed value.
func (s *Sketch) Add(h uint64) {
	for i := range s.rows {
		c := &s.rows[i][s.idx(i, h)]
		if *c != ^uint32(0) {
			*c++
		}
	}
}

// Estimate returns the count-min estimate (an upper bound) for the hashed
// value's occurrence count.
func (s *Sketch) Estimate(h uint64) uint64 {
	min := ^uint32(0)
	for i := range s.rows {
		if c := s.rows[i][s.idx(i, h)]; c < min {
			min = c
		}
	}
	return uint64(min)
}

// splitmix64 is the SplitMix64 finalizer — a cheap, well-mixed permutation
// of 64-bit inputs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
