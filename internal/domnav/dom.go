// Package domnav provides an in-memory DOM and a navigational evaluator for
// the pattern language.
//
// It plays two roles in the reproduction:
//
//   - It is the stand-in for X-Hive/DB in Table 3. X-Hive is a closed
//     commercial native XML database whose role in the paper's evaluation is
//     "a state-of-the-art navigational system"; an in-memory DOM navigator
//     is the natural open substitute (see DESIGN.md §3).
//   - It is the correctness oracle: its evaluator is a direct, obviously
//     correct implementation of the pattern semantics, against which the
//     NoK engine and both join-based baselines are differentially tested.
package domnav

import (
	"io"
	"strings"

	"nok/internal/dewey"
	"nok/internal/sax"
)

// Node is a DOM node. Attributes are materialized as child nodes whose Name
// carries the "@" prefix, mirroring the paper's subject tree (Example 1
// maps @year to a child symbol z). Text content is attached to the element
// as its Value; mixed content is concatenated.
type Node struct {
	Name     string
	Value    string
	Parent   *Node
	Children []*Node
	// Order is the node's preorder (document-order) index, root = 0.
	Order int
	// End is the largest Order within the node's subtree; Order/End form
	// an interval encoding: a contains b iff a.Order < b.Order && b.End <= a.End.
	End int
	// ID is the node's Dewey ID.
	ID dewey.ID
	// Level is the node's depth, root = 1.
	Level int
}

// Doc is a parsed document.
type Doc struct {
	Root *Node
	// Nodes lists all element nodes in document order.
	Nodes []*Node
}

// NumNodes returns the number of element nodes (attributes included, since
// they are modeled as nodes).
func (d *Doc) NumNodes() int { return len(d.Nodes) }

// Parse builds a Doc from XML input.
func Parse(r io.Reader) (*Doc, error) {
	sc := sax.NewScanner(r)
	doc := &Doc{}
	var stack []*Node
	var text []*strings.Builder

	addNode := func(name string) *Node {
		n := &Node{Name: name, Order: len(doc.Nodes)}
		if len(stack) == 0 {
			n.ID = dewey.Root()
			n.Level = 1
			doc.Root = n
		} else {
			p := stack[len(stack)-1]
			n.Parent = p
			p.Children = append(p.Children, n)
			n.ID = p.ID.Child(uint32(len(p.Children)))
			n.Level = p.Level + 1
		}
		doc.Nodes = append(doc.Nodes, n)
		return n
	}

	for {
		ev, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch ev.Kind {
		case sax.StartElement:
			n := addNode(ev.Name)
			stack = append(stack, n)
			text = append(text, &strings.Builder{})
			for _, a := range ev.Attrs {
				attr := addNode("@" + a.Name)
				attr.Value = a.Value
				attr.End = attr.Order
			}
		case sax.EndElement:
			n := stack[len(stack)-1]
			n.Value = strings.TrimSpace(text[len(text)-1].String())
			n.End = len(doc.Nodes) - 1
			stack = stack[:len(stack)-1]
			text = text[:len(text)-1]
		case sax.Text:
			if len(text) > 0 {
				text[len(text)-1].WriteString(ev.Data)
			}
		}
	}
	return doc, nil
}

// MustParse parses a document string, panicking on error (tests).
func MustParse(s string) *Doc {
	d, err := Parse(strings.NewReader(s))
	if err != nil {
		panic(err)
	}
	return d
}

// Descendants calls fn for every proper descendant of n in document order.
func (n *Node) Descendants(fn func(*Node) bool) bool {
	for _, c := range n.Children {
		if !fn(c) {
			return false
		}
		if !c.Descendants(fn) {
			return false
		}
	}
	return true
}

// IsAncestorOf reports whether n properly contains m.
func (n *Node) IsAncestorOf(m *Node) bool {
	return n.Order < m.Order && m.End <= n.End
}
