package domnav

import (
	"sort"

	"nok/internal/pattern"
)

// Evaluate returns the subject nodes matching the pattern tree's returning
// node, in document order, deduplicated. The evaluator is written for
// clarity over speed: it is the oracle the fast engines are verified
// against, and the navigational baseline of the benchmark harness.
func Evaluate(doc *Doc, t *pattern.Tree) []*Node {
	if doc.Root == nil {
		return nil
	}
	e := &evaluator{doc: doc, memo: make(map[memoKey]bool)}

	// Walk down from the pattern root to the returning node, maintaining
	// the set of subject nodes that can play each pattern node's role
	// within a full embedding ("valid" sets). Constraints hanging off the
	// path are checked by subtree matching at each step.
	path := pathToReturn(t)
	virtual := &Node{Name: "", Children: []*Node{doc.Root}, End: len(doc.Nodes)}
	valid := []*Node{virtual}
	for i := 1; i < len(path); i++ {
		parentPat, childPat := path[i-1], path[i]
		axis := axisBetween(parentPat, childPat)
		next := map[*Node]bool{}
		for _, u := range valid {
			// u must still satisfy parentPat's *other* constraints; that
			// was established when u entered valid. Gather candidates for
			// childPat below u.
			switch axis {
			case pattern.Child, pattern.FollowingSibling:
				for _, v := range e.pinnedChildMatches(u, parentPat, childPat) {
					next[v] = true
				}
			case pattern.Descendant:
				u.Descendants(func(v *Node) bool {
					if e.match(v, childPat) {
						next[v] = true
					}
					return true
				})
			case pattern.Following:
				for _, v := range doc.Nodes {
					if v.Order > u.End && e.match(v, childPat) {
						next[v] = true
					}
				}
			}
		}
		valid = make([]*Node, 0, len(next))
		for v := range next {
			valid = append(valid, v)
		}
	}
	sort.Slice(valid, func(i, j int) bool { return valid[i].Order < valid[j].Order })
	return valid
}

// pathToReturn lists pattern nodes from the virtual root down to the
// returning node. For a FollowingSibling-attached returning node the
// "parent" in this chain is its DAG predecessor's parent, so the chain uses
// tree parentage (the node's actual parent in the pattern tree).
func pathToReturn(t *pattern.Tree) []*pattern.Node {
	parentOf := map[*pattern.Node]*pattern.Node{}
	t.Walk(func(n *pattern.Node, _ int) {
		for _, e := range n.Children {
			parentOf[e.To] = n
		}
	})
	var chain []*pattern.Node
	for n := t.Return; n != nil; n = parentOf[n] {
		chain = append(chain, n)
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain
}

func axisBetween(parent, child *pattern.Node) pattern.Axis {
	for _, e := range parent.Children {
		if e.To == child {
			return e.Axis
		}
	}
	return pattern.Child
}

type memoKey struct {
	n *Node
	p *pattern.Node
}

type evaluator struct {
	doc  *Doc
	memo map[memoKey]bool
}

// match reports whether the pattern subtree rooted at p embeds at subject
// node n (n plays p's role).
func (e *evaluator) match(n *Node, p *pattern.Node) bool {
	k := memoKey{n, p}
	if v, ok := e.memo[k]; ok {
		return v
	}
	v := e.matchUncached(n, p)
	e.memo[k] = v
	return v
}

func (e *evaluator) matchUncached(n *Node, p *pattern.Node) bool {
	if p.IsVirtualRoot() {
		if n.Name != "" {
			return false
		}
	} else if !p.Matches(n.Name) {
		return false
	}
	if p.HasValueConstraint() && !p.Cmp.Eval(n.Value, p.Literal) {
		return false
	}
	// Global edges: independent existential checks.
	for _, edge := range p.Children {
		switch edge.Axis {
		case pattern.Descendant:
			found := false
			n.Descendants(func(d *Node) bool {
				if e.match(d, edge.To) {
					found = true
					return false
				}
				return true
			})
			if !found {
				return false
			}
		case pattern.Following:
			found := false
			for _, v := range e.doc.Nodes {
				if v.Order > n.End && e.match(v, edge.To) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
	}
	// Local children: joint assignment respecting the sibling DAG.
	local := pattern.LocalChildren(p)
	if len(local) == 0 {
		return true
	}
	_, ok := e.assignLocal(n.Children, local, nil)
	return ok
}

// assignLocal finds an assignment of the pattern nodes in local (children
// of one pattern node, partially ordered by PrecededBy arcs) to positions
// in subject children, such that arcs map to strictly increasing positions
// and every pattern node matches its subject child. Pattern nodes without
// order constraints may share a subject child (the paper's /a[b/c][b/d]
// example matches both b patterns against one subject b).
//
// If pin is non-nil, it returns the set of feasible positions for pin over
// all valid assignments (used for valid-set propagation); otherwise it
// only reports feasibility.
//
// Greedy in topological order is exact here: each pattern node's only
// interaction with others is the lower bound induced by its predecessors,
// so choosing the smallest feasible position for every node maximizes the
// options of its successors — except when computing pin's full feasible
// set, where each candidate position of pin is tested separately.
func (e *evaluator) assignLocal(children []*Node, local []*pattern.Node, pin *pattern.Node) (pinPositions []int, ok bool) {
	order := topoOrder(local)
	if order == nil {
		return nil, false // cyclic sibling constraints can never match
	}

	feasible := func(pinAt int) bool {
		assigned := map[*pattern.Node]int{}
		for _, pc := range order {
			lower := -1
			for _, pred := range pc.PrecededBy {
				if pos, ok := assigned[pred]; ok && pos > lower {
					lower = pos
				}
			}
			found := -1
			for i := lower + 1; i < len(children); i++ {
				if pc == pin && pinAt >= 0 {
					if i < pinAt {
						continue
					}
					if i > pinAt {
						break
					}
				}
				if e.match(children[i], pc) {
					found = i
					break
				}
			}
			if found < 0 {
				return false
			}
			assigned[pc] = found
		}
		return true
	}

	if pin == nil {
		return nil, feasible(-1)
	}
	for i := range children {
		if e.match(children[i], pin) && feasibleWithPin(e, children, order, pin, i) {
			pinPositions = append(pinPositions, i)
		}
	}
	return pinPositions, len(pinPositions) > 0
}

// feasibleWithPin checks whether a full assignment exists with pin fixed at
// position pinAt. Predecessors of pin must land strictly before pinAt and
// successors strictly after; the greedy scan handles both by treating the
// pinned node as occupying exactly pinAt.
func feasibleWithPin(e *evaluator, children []*Node, order []*pattern.Node, pin *pattern.Node, pinAt int) bool {
	assigned := map[*pattern.Node]int{}
	for _, pc := range order {
		lower := -1
		for _, pred := range pc.PrecededBy {
			if pos, ok := assigned[pred]; ok && pos > lower {
				lower = pos
			}
		}
		if pc == pin {
			if pinAt <= lower || !e.match(children[pinAt], pc) {
				return false
			}
			assigned[pc] = pinAt
			continue
		}
		found := -1
		for i := lower + 1; i < len(children); i++ {
			if e.match(children[i], pc) {
				found = i
				break
			}
		}
		if found < 0 {
			return false
		}
		assigned[pc] = found
	}
	return true
}

// pinnedChildMatches returns the children of u that can play childPat's
// role within a valid local assignment of parentPat's children at u.
func (e *evaluator) pinnedChildMatches(u *Node, parentPat, childPat *pattern.Node) []*Node {
	local := pattern.LocalChildren(parentPat)
	positions, ok := e.assignLocal(u.Children, local, childPat)
	if !ok {
		return nil
	}
	out := make([]*Node, 0, len(positions))
	for _, i := range positions {
		out = append(out, u.Children[i])
	}
	return out
}

// topoOrder sorts pattern nodes so predecessors come first; nil on cycles.
func topoOrder(nodes []*pattern.Node) []*pattern.Node {
	inSet := map[*pattern.Node]bool{}
	for _, n := range nodes {
		inSet[n] = true
	}
	indeg := map[*pattern.Node]int{}
	succs := map[*pattern.Node][]*pattern.Node{}
	for _, n := range nodes {
		for _, pred := range n.PrecededBy {
			if inSet[pred] {
				indeg[n]++
				succs[pred] = append(succs[pred], n)
			}
		}
	}
	var queue []*pattern.Node
	for _, n := range nodes {
		if indeg[n] == 0 {
			queue = append(queue, n)
		}
	}
	var out []*pattern.Node
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		out = append(out, n)
		for _, s := range succs[n] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(out) != len(nodes) {
		return nil
	}
	return out
}
