package domnav

import (
	"strings"
	"testing"

	"nok/internal/dewey"
	"nok/internal/pattern"
	"nok/internal/samples"
)

func evalStrs(t *testing.T, doc *Doc, expr string) []string {
	t.Helper()
	tr, err := pattern.Parse(expr)
	if err != nil {
		t.Fatalf("Parse(%q): %v", expr, err)
	}
	var out []string
	for _, n := range Evaluate(doc, tr) {
		out = append(out, n.Name+"@"+n.ID.String())
	}
	return out
}

func eq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestParseBibliography(t *testing.T) {
	doc := MustParse(samples.Bibliography)
	if doc.Root.Name != "bib" {
		t.Fatalf("root = %s", doc.Root.Name)
	}
	if len(doc.Root.Children) != 4 {
		t.Fatalf("books = %d", len(doc.Root.Children))
	}
	book1 := doc.Root.Children[0]
	// Attribute as first child.
	if book1.Children[0].Name != "@year" || book1.Children[0].Value != "1994" {
		t.Errorf("first child of book: %+v", book1.Children[0])
	}
	if dewey.Compare(book1.ID, dewey.ID{0, 1}) != 0 {
		t.Errorf("book1 ID = %s", book1.ID)
	}
	// Value capture.
	title := book1.Children[1]
	if title.Name != "title" || title.Value != "TCP/IP Illustrated" {
		t.Errorf("title: %+v", title)
	}
	// Interval encoding sanity.
	if !doc.Root.IsAncestorOf(title) || title.IsAncestorOf(doc.Root) {
		t.Error("interval containment broken")
	}
}

func TestPaperQueryExample1(t *testing.T) {
	// "find all books written by Stevens whose price is less than 100"
	// matches books 1 and 2 (both Stevens, price 65.95); book 4 has price
	// 129.95 and no author.
	doc := MustParse(samples.Bibliography)
	got := evalStrs(t, doc, samples.PaperQuery)
	want := []string{"book@0.1", "book@0.2"}
	if !eq(got, want) {
		t.Errorf("paper query = %v, want %v", got, want)
	}
}

func TestBasicPaths(t *testing.T) {
	doc := MustParse(samples.Bibliography)
	cases := []struct {
		expr string
		want []string
	}{
		{`/bib`, []string{"bib@0"}},
		{`/bib/book`, []string{"book@0.1", "book@0.2", "book@0.3", "book@0.4"}},
		{`/bib/book/title`, []string{"title@0.1.2", "title@0.2.2", "title@0.3.2", "title@0.4.2"}},
		{`//last`, []string{"last@0.1.3.1", "last@0.2.3.1", "last@0.3.3.1",
			"last@0.3.4.1", "last@0.3.5.1", "last@0.4.3.1"}},
		{`/bib/book[author/last="Abiteboul"]/title`, []string{"title@0.3.2"}},
		{`//book[price>100]`, []string{"book@0.4"}},
		{`//book[price>=129.95]`, []string{"book@0.4"}},
		{`//book[@year="2000"]/price`, []string{"price@0.3.7"}},
		{`//book[editor]`, []string{"book@0.4"}},
		{`//book[editor/affiliation="CITI"]/@year`, []string{"@year@0.4.1"}},
		{`/bib/book/author[last="Suciu"]/first`, []string{"first@0.3.5.2"}},
		{`//author[last="Stevens"][first="W."]`, []string{"author@0.1.3", "author@0.2.3"}},
		{`/bib/*/title`, []string{"title@0.1.2", "title@0.2.2", "title@0.3.2", "title@0.4.2"}},
		{`//nothing`, nil},
		{`/wrongroot/book`, nil},
		{`//book[author][editor]`, nil}, // no book has both
		{`//book[title="Data on the Web"][author/last="Buneman"]`, []string{"book@0.3"}},
	}
	for _, c := range cases {
		got := evalStrs(t, doc, c.expr)
		if !eq(got, c.want) {
			t.Errorf("%s = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestSharedSubjectChild(t *testing.T) {
	// The paper's /a[b/c][b/d] note: one subject b child satisfying both
	// pattern branches is a legal embedding.
	doc := MustParse(`<a><b><c/><d/></b></a>`)
	got := evalStrs(t, doc, `/a[b/c][b/d]`)
	if !eq(got, []string{"a@0"}) {
		t.Errorf("got %v", got)
	}
	// And when split across two b's it still matches.
	doc2 := MustParse(`<a><b><c/></b><b><d/></b></a>`)
	got2 := evalStrs(t, doc2, `/a[b/c][b/d]`)
	if !eq(got2, []string{"a@0"}) {
		t.Errorf("split case: got %v", got2)
	}
}

func TestFollowingSiblingSemantics(t *testing.T) {
	doc := MustParse(`<r><a/><b/><a/><c/></r>`)
	// b has a following sibling a (the second one).
	got := evalStrs(t, doc, `/r/b/following-sibling::a`)
	if !eq(got, []string{"a@0.3"}) {
		t.Errorf("got %v", got)
	}
	// c has no following sibling a.
	got = evalStrs(t, doc, `/r/c/following-sibling::a`)
	if got != nil {
		t.Errorf("got %v, want none", got)
	}
	// Strictness: a node is not its own following sibling.
	doc2 := MustParse(`<r><a/></r>`)
	got = evalStrs(t, doc2, `/r/a/following-sibling::a`)
	if got != nil {
		t.Errorf("strictness violated: %v", got)
	}
}

func TestFollowingSiblingChain(t *testing.T) {
	doc := MustParse(`<r><x/><y/><z/></r>`)
	got := evalStrs(t, doc, `/r/x/following-sibling::y/following-sibling::z`)
	if !eq(got, []string{"z@0.3"}) {
		t.Errorf("got %v", got)
	}
	// Order violation: z before y.
	got = evalStrs(t, doc, `/r/z/following-sibling::y`)
	if got != nil {
		t.Errorf("got %v, want none", got)
	}
}

func TestDescendantDeep(t *testing.T) {
	doc := MustParse(`<a><b><c><d><e/></d></c></b></a>`)
	got := evalStrs(t, doc, `/a//e`)
	if !eq(got, []string{"e@0.1.1.1.1"}) {
		t.Errorf("got %v", got)
	}
	got = evalStrs(t, doc, `//c//e`)
	if !eq(got, []string{"e@0.1.1.1.1"}) {
		t.Errorf("got %v", got)
	}
	// Descendant is strict: //a//a on a single a yields nothing.
	doc2 := MustParse(`<a><b/></a>`)
	got = evalStrs(t, doc2, `//a//a`)
	if got != nil {
		t.Errorf("got %v", got)
	}
}

func TestNestedDescendantPredicate(t *testing.T) {
	doc := MustParse(`<r><a><x><deep><target/></deep></x></a><a><x/></a></r>`)
	got := evalStrs(t, doc, `/r/a[.//target]`)
	if !eq(got, []string{"a@0.1"}) {
		t.Errorf("got %v", got)
	}
}

func TestValueOnMixedContent(t *testing.T) {
	doc := MustParse(`<r><p>hello <b>bold</b> world</p></r>`)
	// p's own text is "hello  world" (concatenated, trimmed); b is "bold".
	got := evalStrs(t, doc, `//b[.="bold"]`)
	if !eq(got, []string{"b@0.1.1"}) {
		t.Errorf("got %v", got)
	}
}

func TestDuplicateElimination(t *testing.T) {
	// Two Stevens authors in one book must yield the book once.
	doc := MustParse(`<bib><book><author><last>Stevens</last></author>` +
		`<author><last>Stevens</last></author></book></bib>`)
	got := evalStrs(t, doc, `//book[author/last="Stevens"]`)
	if !eq(got, []string{"book@0.1"}) {
		t.Errorf("got %v", got)
	}
}

func TestBigDocumentScales(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<root>")
	for i := 0; i < 2000; i++ {
		sb.WriteString("<item><k>5</k></item>")
	}
	sb.WriteString("<item><k>7</k></item></root>")
	doc := MustParse(sb.String())
	tr := pattern.MustParse(`//item[k="7"]`)
	got := Evaluate(doc, tr)
	if len(got) != 1 {
		t.Fatalf("got %d results", len(got))
	}
}

func TestFollowingAxisOracle(t *testing.T) {
	// Hand-computed expectations validate the oracle itself for the ◀
	// axis (the engines are tested *against* the oracle, so the oracle
	// needs independent ground truth).
	doc := MustParse(`<r><a/><b><c/></b><a/><c/></r>`)
	cases := []struct {
		expr string
		want []string
	}{
		{`/r/b/following::a`, []string{"a@0.3"}},            // only the a after b
		{`/r/a/following::c`, []string{"c@0.2.1", "c@0.4"}}, // both c's follow the first a
		{`//c/following::a`, []string{"a@0.3"}},             // a follows the nested c
		{`//c/following::c`, []string{"c@0.4"}},             // last c follows nested c
		{`/r/following::a`, nil},                            // nothing follows the root
	}
	for _, c := range cases {
		got := evalStrs(t, doc, c.expr)
		if !eq(got, c.want) {
			t.Errorf("%s = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestFollowingIsNotDescendant(t *testing.T) {
	// following:: excludes descendants: strictly after the subtree.
	doc := MustParse(`<r><a><x/></a><x/></r>`)
	got := evalStrs(t, doc, `//a/following::x`)
	if !eq(got, []string{"x@0.2"}) {
		t.Errorf("got %v", got)
	}
}

func TestPrecedingSiblingOracle(t *testing.T) {
	doc := MustParse(`<r><a/><b/><a/></r>`)
	// b preceded by a: yes (first a); returns b's preceding a? No — the
	// step RETURNS the preceding-sibling node.
	got := evalStrs(t, doc, `/r/b/preceding-sibling::a`)
	if !eq(got, []string{"a@0.1"}) {
		t.Errorf("got %v", got)
	}
	// The second a has both b and the first a before it.
	got = evalStrs(t, doc, `/r/a/preceding-sibling::b`)
	if !eq(got, []string{"b@0.2"}) {
		t.Errorf("got %v", got)
	}
	// Nothing precedes the first child.
	doc2 := MustParse(`<r><b/><a/></r>`)
	got = evalStrs(t, doc2, `/r/b/preceding-sibling::a`)
	if got != nil {
		t.Errorf("got %v, want none", got)
	}
}
