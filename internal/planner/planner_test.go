package planner

import (
	"strings"
	"testing"

	"nok/internal/pattern"
	"nok/internal/stats"
	"nok/internal/symtab"
	"nok/internal/vstore"
)

// mapResolver is a test tag table.
type mapResolver map[string]symtab.Sym

func (m mapResolver) Lookup(name string) (symtab.Sym, bool) {
	sym, ok := m[name]
	return sym, ok
}

// synth hand-builds a synopsis: tag name → count, path (slash-joined tag
// names) → count, literal → occurrence count.
func synth(res mapResolver, epoch, totalNodes, valueNodes, treePages uint64,
	tagCounts map[string]uint64, pathCounts map[string]uint64, valCounts map[string]uint64) *stats.Synopsis {
	s := &stats.Synopsis{
		Epoch:      epoch,
		TotalNodes: totalNodes,
		ValueNodes: valueNodes,
		TreePages:  treePages,
		Tags:       make(map[symtab.Sym]*stats.TagStat),
		Paths:      make(map[uint64]*stats.PathStat),
		Values:     stats.NewSketch(0),
	}
	for name, n := range tagCounts {
		s.Tags[res[name]] = &stats.TagStat{Count: n}
	}
	for path, n := range pathCounts {
		h := stats.PathSeed
		var syms []symtab.Sym
		for _, name := range strings.Split(path, "/") {
			sym := res[name]
			h = stats.ExtendPath(h, sym)
			syms = append(syms, sym)
		}
		s.Paths[h] = &stats.PathStat{Syms: syms, Count: n}
	}
	for lit, n := range valCounts {
		for i := uint64(0); i < n; i++ {
			s.Values.Add(vstore.Hash([]byte(lit)))
		}
	}
	return s
}

// input parses expr and derives the Build input with a nil anchor (the
// anchored tests below set Anchor/Chain explicitly).
func input(t *testing.T, expr string) Input {
	t.Helper()
	tr, err := pattern.Parse(expr)
	if err != nil {
		t.Fatal(err)
	}
	return Input{Expr: expr, Tree: tr, Parts: pattern.Partition(tr)}
}

var shape = Shape{TreePages: 1000, IndexHeight: 2, LeafFanout: 64}

func TestTagIndexBeatsScanOnRareTag(t *testing.T) {
	res := mapResolver{"item": 1, "rare": 2}
	syn := synth(res, 3, 100000, 0, 1000,
		map[string]uint64{"item": 50000, "rare": 10}, nil, nil)

	in := input(t, "//item//rare")
	p := Build(in, syn, res, shape)
	if p.Epoch != 3 {
		t.Errorf("epoch = %d, want 3", p.Epoch)
	}
	// The rare partition should drive from its tag index; the item partition
	// is cheaper to probe (50k entries, no lift) than to scan (1000 pages +
	// 50k candidates either way, but probe ≪ 1000 pages).
	rarePart := p.Parts[len(p.Parts)-1]
	if rarePart.Access != AccessTagIndex || rarePart.EstStarts != 10 {
		t.Errorf("rare partition: %+v", rarePart)
	}
	for _, pp := range p.Parts[1:] {
		if pp.Access == AccessScan {
			t.Errorf("partition %d fell back to scan: %+v", pp.Part, pp)
		}
	}
}

func TestScanBeatsIndexOnTinyDocument(t *testing.T) {
	res := mapResolver{"a": 1}
	syn := synth(res, 1, 10, 0, 1, map[string]uint64{"a": 5}, nil, nil)
	p := Build(input(t, "//a"), syn, res, Shape{TreePages: 1, IndexHeight: 2, LeafFanout: 64})
	// Scan: 1 page + 5 candidates = 6. Tag probe: height 2 + leaf + 5 = >7.
	if pp := p.Parts[1]; pp.Access != AccessScan {
		t.Errorf("tiny document: %+v, want scan", pp)
	}
}

func TestValueIndexChosenForRareLiteral(t *testing.T) {
	res := mapResolver{"book": 1, "author": 2}
	syn := synth(res, 1, 100000, 60000, 1000,
		map[string]uint64{"book": 30000, "author": 30000},
		nil, map[string]uint64{"Stevens": 3})

	p := Build(input(t, `//book[author="Stevens"]`), syn, res, shape)
	pp := p.Parts[1]
	if pp.Access != AccessValueIndex {
		t.Fatalf("access = %v (%s), want value-index", pp.Access, pp.Detail)
	}
	if pp.EstStarts < 3 || pp.EstStarts > 30 {
		t.Errorf("est starts = %v, want ≈3 (count-min may inflate slightly)", pp.EstStarts)
	}
	if p.EstRows > pp.EstStarts {
		t.Errorf("est rows %v exceeds driving starts %v", p.EstRows, pp.EstStarts)
	}
}

func TestUnknownTagIsProvablyEmpty(t *testing.T) {
	res := mapResolver{"a": 1}
	syn := synth(res, 1, 1000, 0, 100, map[string]uint64{"a": 1000}, nil, nil)
	p := Build(input(t, "//a[nosuchtag]"), syn, res, shape)
	pp := p.Parts[1]
	if pp.Access != AccessTagIndex || pp.EstStarts != 0 || pp.EstMatches != 0 {
		t.Errorf("unknown tag: %+v, want empty tag-index drive", pp)
	}
	if p.EstRows != 0 {
		t.Errorf("est rows = %v, want 0", p.EstRows)
	}
}

func TestBottomUpOrderSmallestFirst(t *testing.T) {
	res := mapResolver{"a": 1, "big": 2, "tiny": 3}
	syn := synth(res, 1, 100000, 0, 1000,
		map[string]uint64{"a": 1000, "big": 50000, "tiny": 2}, nil, nil)
	p := Build(input(t, "//a[.//big][.//tiny]"), syn, res, shape)
	if len(p.Parts) != 4 {
		t.Fatalf("partitions = %d, want 4", len(p.Parts))
	}
	if len(p.Order) != 3 {
		t.Fatalf("order = %v, want 3 entries", p.Order)
	}
	// The a partition joins against big and tiny, so both leaves come first,
	// and tiny (2 est matches) runs before big (50000).
	if p.Order[2] != 1 {
		t.Errorf("order = %v, want the joining partition last", p.Order)
	}
	tinyIdx, bigIdx := -1, -1
	for pos, pi := range p.Order {
		switch {
		case strings.Contains(p.Parts[pi].Detail, "tiny"):
			tinyIdx = pos
		case strings.Contains(p.Parts[pi].Detail, "big"):
			bigIdx = pos
		}
	}
	if tinyIdx < 0 || bigIdx < 0 || tinyIdx > bigIdx {
		t.Errorf("order = %v (tiny at %d, big at %d), want tiny first", p.Order, tinyIdx, bigIdx)
	}
}

// anchored derives Anchor/Chain for /bib/book-style pure child chains the
// way core's topAnchor does, enough for planner-level tests.
func anchored(t *testing.T, expr string) Input {
	t.Helper()
	in := input(t, expr)
	cur := in.Tree.Root
	var chain []string
	for len(cur.Children) == 1 && cur.Children[0].Axis == pattern.Child {
		if !cur.IsVirtualRoot() {
			chain = append(chain, cur.Test)
		}
		cur = cur.Children[0].To
		if cur == in.Tree.Return || cur.HasValueConstraint() {
			break
		}
	}
	if cur.IsVirtualRoot() {
		t.Fatalf("%s has no anchor", expr)
	}
	in.Anchor, in.Chain = cur, chain
	return in
}

func TestPathIndexChosenForSelectivePath(t *testing.T) {
	res := mapResolver{"bib": 1, "book": 2}
	// book is common document-wide but /bib/book holds only 2 nodes: the
	// path summary is what makes the path index attractive.
	syn := synth(res, 1, 100000, 0, 1000,
		map[string]uint64{"bib": 1, "book": 10000},
		map[string]uint64{"bib": 1, "bib/book": 2}, nil)

	p := Build(anchored(t, "/bib/book"), syn, res, shape)
	top := p.Parts[0]
	if !p.Anchored || top.Access != AccessPathIndex {
		t.Fatalf("top = %+v (anchored=%v), want path-index", top, p.Anchored)
	}
	if top.EstStarts != 2 {
		t.Errorf("est starts = %v, want 2 (path summary cardinality)", top.EstStarts)
	}
	if !strings.Contains(top.Detail, "path=/bib/book") {
		t.Errorf("detail = %q", top.Detail)
	}
}

func TestPlanRendering(t *testing.T) {
	res := mapResolver{"bib": 1, "book": 2}
	syn := synth(res, 9, 100, 0, 4,
		map[string]uint64{"bib": 1, "book": 4},
		map[string]uint64{"bib": 1, "bib/book": 4}, nil)
	p := Build(anchored(t, "/bib/book"), syn, res, Shape{TreePages: 4, IndexHeight: 1, LeafFanout: 64})
	out := p.String()
	for _, want := range []string{
		"plan /bib/book (stats epoch 9, anchored)",
		"partition 0:",
		"est total: pages=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}
