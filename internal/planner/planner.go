// Package planner chooses starting-point access paths and a bottom-up
// partition order for NoK query evaluation, using the persistent
// statistics synopsis (internal/stats) instead of the paper's fixed §6.2
// heuristic. It is purely advisory: it emits a Plan describing, per NoK
// partition, which access path to use (scan, tag index, value index, or —
// for the anchored top partition — path index) with estimated starting
// points, result cardinality and pages touched; internal/core executes the
// plan and EXPLAIN ANALYZE renders estimated-vs-actual so misestimates are
// visible.
//
// The cost unit is pages examined, matching QueryStats.PagesScanned: a
// full scan costs the string tree's page count; an index probe costs a
// B+-tree descent plus the leaf pages holding the matching entries; every
// candidate lifted to an ancestor or verified against the data file costs
// one Dewey-index descent; and each starting point charges one page of
// matching navigation.
package planner

import (
	"fmt"
	"strings"

	"nok/internal/pattern"
	"nok/internal/stats"
	"nok/internal/symtab"
	"nok/internal/vstore"
)

// Access is a starting-point access path. It mirrors core.Strategy but
// omits Auto: a plan is always concrete.
type Access uint8

const (
	AccessScan Access = iota
	AccessTagIndex
	AccessValueIndex
	AccessPathIndex
)

// String names the access path (same vocabulary as core.Strategy).
func (a Access) String() string {
	switch a {
	case AccessScan:
		return "scan"
	case AccessTagIndex:
		return "tag-index"
	case AccessValueIndex:
		return "value-index"
	case AccessPathIndex:
		return "path-index"
	default:
		return fmt.Sprintf("Access(%d)", uint8(a))
	}
}

// Resolver resolves tag names to symbols; *symtab.Table implements it.
type Resolver interface {
	Lookup(name string) (symtab.Sym, bool)
}

// Shape carries the physical facts the cost model needs beyond the
// synopsis.
type Shape struct {
	// TreePages is the string tree's page count (a full scan's cost).
	TreePages float64
	// IndexHeight is the typical B+-tree height — the page cost of one
	// point lookup (Dewey-index lift or value verification).
	IndexHeight float64
	// LeafFanout is the estimated index entries per leaf page, converting
	// an entry count into leaf pages touched by a prefix scan.
	LeafFanout float64
}

func (sh Shape) withDefaults() Shape {
	if sh.TreePages < 1 {
		sh.TreePages = 1
	}
	if sh.IndexHeight < 1 {
		sh.IndexHeight = 1
	}
	if sh.LeafFanout < 1 {
		sh.LeafFanout = 64
	}
	return sh
}

// PartPlan is the plan for one NoK partition.
type PartPlan struct {
	// Part is the partition index (0 = top).
	Part int
	// Access is the chosen access path; Detail names its driver (the tag,
	// the literal, or the anchored path).
	Access Access
	Detail string
	// EstStarts estimates the starting points the access yields, EstMatches
	// the partition's ExtMatch cardinality after local constraints, and
	// EstPages the pages examined locating starts and matching them.
	EstStarts  float64
	EstMatches float64
	EstPages   float64
}

// Plan is a full query plan.
type Plan struct {
	// Expr is the source expression; Epoch the synopsis epoch the plan was
	// costed against (plans are invalid across epochs).
	Expr  string
	Epoch uint64
	// Parts is indexed by partition index. Order is the bottom-up
	// evaluation order for the non-top partitions: children before the
	// partitions that join against them, smallest estimated intermediate
	// result first, so an empty child short-circuits its parents' matching.
	Parts []PartPlan
	Order []int
	// Anchored reports whether the top partition starts from anchor
	// candidates rather than the virtual root.
	Anchored bool
	// Parallel reports that the bottom-up phase is worth running on
	// multiple goroutines: at least two partitions have no dependency on
	// each other, and the estimated page work clears
	// ParallelPageThreshold. Cheap queries stay sequential — goroutine
	// and merge overhead would dominate their sub-millisecond runtime.
	Parallel bool
	// EstTotalPages and EstRows summarize the whole plan.
	EstTotalPages float64
	EstRows       float64
}

// ParallelPageThreshold is the estimated total page work below which a
// plan stays sequential even when its partitions are independent. At the
// default 4KB page size this is ~256KB of tree data — under that,
// spawning workers costs more than the pages do.
const ParallelPageThreshold = 64

// Input is everything Build needs about one parsed query.
type Input struct {
	Expr  string
	Tree  *pattern.Tree
	Parts []*pattern.NoKTree
	// Anchor/Chain describe the top partition's anchored '/' chain (see
	// core's topAnchor); a nil Anchor means virtual-root evaluation.
	Anchor *pattern.Node
	Chain  []string
}

// Build costs every candidate access path per partition against the
// synopsis and returns the cheapest assignment plus the bottom-up order.
func Build(in Input, syn *stats.Synopsis, res Resolver, shape Shape) *Plan {
	c := &coster{syn: syn, res: res, shape: shape.withDefaults()}
	p := &Plan{
		Expr:     in.Expr,
		Epoch:    syn.Epoch,
		Parts:    make([]PartPlan, len(in.Parts)),
		Anchored: in.Anchor != nil,
	}

	for i, nt := range in.Parts {
		var pp PartPlan
		if i == 0 {
			pp = c.planTop(nt, in.Anchor, in.Chain)
		} else {
			pp = c.planPartition(nt.Root, false)
		}
		pp.Part = i
		p.Parts[i] = pp
		p.EstTotalPages += pp.EstPages
	}

	p.Order = bottomUpOrder(in.Parts, p.Parts)

	// Two leaf partitions never depend on each other, so their ExtMatch
	// passes can overlap; a single leaf means the dependency graph is a
	// chain and parallelism has nothing to run concurrently.
	leaves := 0
	for i := 1; i < len(in.Parts); i++ {
		if len(in.Parts[i].Links) == 0 {
			leaves++
		}
	}
	p.Parallel = leaves >= 2 && p.EstTotalPages >= ParallelPageThreshold

	// EstRows: the chain to the returning partition only narrows, so the
	// smallest estimate along it bounds the result.
	p.EstRows = p.Parts[0].EstMatches
	for _, nt := range pattern.PathToReturn(in.Parts, in.Tree) {
		if m := p.Parts[nt.Index()].EstMatches; m < p.EstRows {
			p.EstRows = m
		}
	}
	return p
}

// coster evaluates candidate access paths.
type coster struct {
	syn   *stats.Synopsis
	res   Resolver
	shape Shape
}

// tagRef is a concrete-tag pattern node inside one partition.
type tagRef struct {
	node  *pattern.Node
	depth int
	count uint64
	known bool // tag occurs in the document
}

// valRef is an equality-value-constrained node inside one partition.
type valRef struct {
	node  *pattern.Node
	depth int
	est   uint64
}

// localInfo walks the partition's local pattern tree collecting concrete
// tags and equality constraints with their depths below root.
func (c *coster) localInfo(root *pattern.Node) (tags []tagRef, vals []valRef) {
	var rec func(n *pattern.Node, d int)
	rec = func(n *pattern.Node, d int) {
		if !n.IsVirtualRoot() && n.Test != "*" {
			tr := tagRef{node: n, depth: d}
			if sym, ok := c.res.Lookup(n.Test); ok {
				tr.count = c.syn.TagCount(sym)
				tr.known = true
			}
			tags = append(tags, tr)
		}
		if n.Cmp == pattern.CmpEq {
			est := c.syn.ValueEstimate(vstore.Hash([]byte(n.Literal)))
			vals = append(vals, valRef{node: n, depth: d, est: est})
		}
		for _, ch := range pattern.LocalChildren(n) {
			rec(ch, d+1)
		}
	}
	rec(root, 0)
	return tags, vals
}

// probe is the page cost of an index prefix scan yielding n entries.
func (c *coster) probe(n float64) float64 {
	return c.shape.IndexHeight + n/c.shape.LeafFanout
}

// matchCost charges one page of navigation per starting point tried.
func matchCost(starts float64) float64 { return starts }

// planPartition picks the cheapest access for a non-top partition (or the
// synthetic anchor tree of the top one, when anchored=true the caller adds
// the path-index candidate itself).
func (c *coster) planPartition(root *pattern.Node, anchorOnly bool) PartPlan {
	tags, vals := c.localInfo(root)
	sh := c.shape

	rootCount := c.syn.TotalNodes
	if !root.IsVirtualRoot() && root.Test != "*" {
		if sym, ok := c.res.Lookup(root.Test); ok {
			rootCount = c.syn.TagCount(sym)
		} else {
			rootCount = 0
		}
	}

	selectivity := func(starts float64) float64 {
		m := starts
		for _, t := range tags {
			if !t.known {
				return 0
			}
			if f := float64(t.count); f < m {
				m = f
			}
		}
		for _, v := range vals {
			denom := float64(c.syn.ValueNodes)
			if denom < 1 {
				denom = 1
			}
			sel := float64(v.est) / denom
			if sel > 1 {
				sel = 1
			}
			m *= sel
		}
		return m
	}

	// Scan: every page examined, candidates = nodes passing the root test.
	best := PartPlan{
		Access:    AccessScan,
		Detail:    scanDetail(root),
		EstStarts: float64(rootCount),
		EstPages:  sh.TreePages + matchCost(float64(rootCount)),
	}

	// Tag index: drive from the rarest concrete tag, lift to the root.
	if t, ok := bestTag(tags); ok {
		n := float64(t.count)
		starts := n
		if float64(rootCount) < starts {
			starts = float64(rootCount)
		}
		pages := c.probe(n) + matchCost(starts)
		if t.depth > 0 {
			pages += n * sh.IndexHeight // Dewey lift per hit
		}
		cand := PartPlan{
			Access:    AccessTagIndex,
			Detail:    fmt.Sprintf("tag=%s depth=%d", t.node.Test, t.depth),
			EstStarts: starts,
			EstPages:  pages,
		}
		if cand.EstPages < best.EstPages {
			best = cand
		}
	}

	// Value index: drive from the rarest equality literal; every candidate
	// pays a data-file verification, and a lift when below the root.
	if v, ok := bestVal(vals); ok {
		n := float64(v.est)
		starts := n
		if float64(rootCount) < starts {
			starts = float64(rootCount)
		}
		pages := c.probe(n) + n*sh.IndexHeight + matchCost(starts)
		if v.depth > 0 {
			pages += n * sh.IndexHeight
		}
		cand := PartPlan{
			Access:    AccessValueIndex,
			Detail:    fmt.Sprintf("value=%q depth=%d", v.node.Literal, v.depth),
			EstStarts: starts,
			EstPages:  pages,
		}
		if cand.EstPages < best.EstPages {
			best = cand
		}
	}

	best.EstMatches = selectivity(best.EstStarts)
	return best
}

// planTop plans the top partition: virtual-root navigation when
// unanchored, otherwise the cheapest of the anchor tree's accesses and the
// path index over the whole anchored chain.
func (c *coster) planTop(nt *pattern.NoKTree, anchor *pattern.Node, chain []string) PartPlan {
	if anchor == nil {
		pp := PartPlan{Access: AccessScan, Detail: "virtual-root navigation", EstStarts: 1}
		if len(pattern.LocalChildren(nt.Root)) > 0 {
			pp.EstPages = c.shape.TreePages
		}
		pp.EstMatches = 1
		return pp
	}

	best := c.planPartition(anchor, true)
	// Anchored non-path accesses verify each candidate's ancestor chain.
	best.EstPages += best.EstStarts * float64(len(chain)) * c.shape.IndexHeight

	if cand, ok := c.pathCandidate(anchor, chain); ok && cand.EstPages < best.EstPages {
		// The path access already fixes the whole chain; local constraints
		// below the anchor still apply.
		cand.EstMatches = cand.EstStarts
		if best.EstMatches < cand.EstMatches && best.EstStarts > 0 {
			cand.EstMatches = best.EstMatches / best.EstStarts * cand.EstStarts
		}
		best = cand
	}
	return best
}

// pathCandidate costs the path-index access for an anchored concrete
// chain. ok is false when the chain has wildcards/unknown tags or the
// summary cannot estimate the path.
func (c *coster) pathCandidate(anchor *pattern.Node, chain []string) (PartPlan, bool) {
	h := stats.PathSeed
	labels := make([]string, 0, len(chain)+1)
	for _, test := range append(append([]string{}, chain...), anchor.Test) {
		if test == "*" {
			return PartPlan{}, false
		}
		sym, ok := c.res.Lookup(test)
		if !ok {
			// Unknown tag: the path is provably empty — the cheapest
			// possible access.
			return PartPlan{
				Access: AccessPathIndex,
				Detail: "path=/" + strings.Join(append(labels, test), "/"),
			}, true
		}
		h = stats.ExtendPath(h, sym)
		labels = append(labels, test)
	}
	n, known := c.syn.PathCount(h)
	if !known {
		// Truncated summary: bound by the anchor tag's count.
		if sym, ok := c.res.Lookup(anchor.Test); ok {
			n = c.syn.TagCount(sym)
		}
	}
	f := float64(n)
	return PartPlan{
		Access:    AccessPathIndex,
		Detail:    "path=/" + strings.Join(labels, "/"),
		EstStarts: f,
		EstPages:  c.probe(f) + f*float64(len(chain))*c.shape.IndexHeight + matchCost(f),
	}, true
}

func scanDetail(root *pattern.Node) string {
	if root.IsVirtualRoot() {
		return "virtual-root navigation"
	}
	return "tag=" + root.Test
}

func bestTag(tags []tagRef) (tagRef, bool) {
	var best tagRef
	found := false
	for _, t := range tags {
		if !t.known {
			return t, true // provably empty — unbeatable
		}
		if !found || t.count < best.count {
			best, found = t, true
		}
	}
	return best, found
}

func bestVal(vals []valRef) (valRef, bool) {
	var best valRef
	found := false
	for _, v := range vals {
		if !found || v.est < best.est {
			best, found = v, true
		}
	}
	return best, found
}

// bottomUpOrder orders the non-top partitions so that every partition's
// linked children come first (required for ExtMatch predicates) and, among
// the ready ones, the smallest estimated intermediate result runs first —
// a provably empty child then short-circuits every partition joining
// against it before any expensive matching starts.
func bottomUpOrder(parts []*pattern.NoKTree, plans []PartPlan) []int {
	n := len(parts)
	if n <= 1 {
		return nil
	}
	index := make(map[*pattern.NoKTree]int, n)
	for i, nt := range parts {
		index[nt] = i
	}
	pending := make(map[int][]int, n) // partition → unfinished child partitions
	for i := 1; i < n; i++ {
		for _, l := range parts[i].Links {
			pending[i] = append(pending[i], index[l.To])
		}
	}
	done := make([]bool, n)
	order := make([]int, 0, n-1)
	for len(order) < n-1 {
		pick := -1
		for i := n - 1; i >= 1; i-- {
			if done[i] {
				continue
			}
			ready := true
			for _, ch := range pending[i] {
				if !done[ch] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			if pick < 0 || plans[i].EstMatches < plans[pick].EstMatches ||
				(plans[i].EstMatches == plans[pick].EstMatches && i > pick) {
				pick = i
			}
		}
		if pick < 0 {
			// Cyclic links cannot happen (partitions form a tree); keep a
			// safe fallback anyway.
			for i := n - 1; i >= 1; i-- {
				if !done[i] {
					pick = i
					break
				}
			}
		}
		done[pick] = true
		order = append(order, pick)
	}
	return order
}

// String renders the plan for nokquery -plan and the golden-plan tests.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %s (stats epoch %d", p.Expr, p.Epoch)
	if p.Anchored {
		b.WriteString(", anchored")
	}
	if p.Parallel {
		b.WriteString(", parallel")
	}
	b.WriteString(")\n")
	for _, pp := range p.Parts {
		fmt.Fprintf(&b, "  partition %d: %-11s %s  est starts=%.0f matches=%.0f pages=%.0f\n",
			pp.Part, pp.Access, pp.Detail, pp.EstStarts, pp.EstMatches, pp.EstPages)
	}
	if len(p.Order) > 0 {
		fmt.Fprintf(&b, "  bottom-up order: %v\n", p.Order)
	}
	fmt.Fprintf(&b, "  est total: pages=%.0f rows=%.0f\n", p.EstTotalPages, p.EstRows)
	return b.String()
}
