// Package shardbench holds the scale-out experiment behind nokbench
// -table shard. It lives outside internal/bench because it depends on the
// public nok package (via internal/shard), which internal/bench cannot —
// the root package's benchmark suite imports internal/bench from an
// internal test file.
package shardbench

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"nok"
	"nok/internal/bench"
	"nok/internal/shard"
)

// ---- sharded scatter-gather speedup ------------------------------------------

// ShardRow reports one topology of the scale-out experiment: the same
// tag-selective workload against the same collection held as a single
// store and as sharded collections of growing width.
type ShardRow struct {
	Shards  int     // 0 = the single-store baseline
	UsPass  float64 // microseconds per workload pass (median of runs)
	Speedup float64 // baseline time / this time
	Pruned  int64   // shards skipped by statistics across one pass
	Scanned int64   // pages scanned across one pass
}

// ShardSpeedupMin is the acceptance budget: the 4-shard, path-routed
// topology must answer the scan-bound workload at least this much faster
// than the single store. The speedup is structural, not a core-count
// artifact — per-shard tag statistics prune the shards whose kind tag is
// absent, so the surviving shard's partition scan covers a quarter of the
// collection — which keeps the budget meaningful on single-core CI
// runners, with scatter parallelism adding to it on wider machines.
const ShardSpeedupMin = 1.5

// shardDoc builds the collection: four document kinds in equal numbers
// (path routing deals them onto one shard each), every kind carrying the
// same <meta><val> block. Because the val fields are shared across kinds
// and frequent (16 per document), neither the tag index nor the value
// index offers the single store a selective anchor for the workload's
// wildcard step — the honest plan everywhere is a partition scan, whose
// cost is proportional to the data a store holds.
func shardDoc(perKind int) string {
	var sb strings.Builder
	sb.WriteString(`<corpus era="modern">`)
	for i := 0; i < perKind; i++ {
		for _, kind := range []string{"book", "article", "thesis", "report"} {
			fmt.Fprintf(&sb, "<%s><title>t%d</title><meta>", kind, i)
			for j := 0; j < 16; j++ {
				fmt.Fprintf(&sb, "<val>%d</val>", (i+j*13)%500)
			}
			fmt.Fprintf(&sb, "</meta></%s>", kind)
		}
	}
	sb.WriteString("</corpus>")
	return sb.String()
}

// shardQueries is the workload: one scan-bound query per document kind.
// The wildcard step cannot be index-anchored (no tag), the range predicate
// cannot use the value index, and val appears everywhere — so the single
// store scans the whole collection per query. The kind tag contributes no
// cheap anchor (its subtree must be walked regardless) but it is exactly
// what per-shard statistics prune on: three of four shards prove the tag
// absent and drop out, leaving a scan of a quarter of the data.
var shardQueries = []string{
	`//book//*[val<3]`,
	`//article//*[val<3]`,
	`//thesis//*[val<3]`,
	`//report//*[val<3]`,
}

// shardStore is the query surface the experiment needs from both layouts.
type shardStore interface {
	QueryWithOptions(expr string, opts *nok.QueryOptions) ([]nok.Result, *nok.QueryStats, error)
	Close() error
}

// Shard measures scatter-gather evaluation against sharded collections of
// width 1, 2 and 4 (path routing) vs the single-store baseline. One pass
// runs every workload query once; the reported time is the median pass
// over cfg.Runs batches of passes.
func Shard(cfg bench.Config) ([]ShardRow, error) {
	cfg = cfg.WithDefaults()

	tmp, err := os.MkdirTemp("", "nok-shardbench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)
	xmlPath := tmp + "/corpus.xml"
	if err := os.WriteFile(xmlPath, []byte(shardDoc(400*cfg.Scale)), 0o644); err != nil {
		return nil, err
	}

	// passStats runs the workload once and accumulates the counters the
	// row reports; timing wraps it with warm pages.
	passStats := func(st shardStore, row *ShardRow) error {
		for _, q := range shardQueries {
			_, stats, err := st.QueryWithOptions(q, nil)
			if err != nil {
				return fmt.Errorf("%s: %w", q, err)
			}
			row.Scanned += int64(stats.PagesScanned)
			for _, sh := range stats.Shards {
				if sh.Skipped {
					row.Pruned++
				}
			}
		}
		return nil
	}
	measure := func(st shardStore, row *ShardRow) error {
		// Warm up: pages into the pool, plan caches populated.
		if err := passStats(st, row); err != nil {
			return err
		}
		row.Scanned, row.Pruned = 0, 0
		if err := passStats(st, row); err != nil {
			return err
		}
		d, _, err := timeMedian(cfg.Runs, func() (int, error) {
			const passes = 8
			for i := 0; i < passes; i++ {
				for _, q := range shardQueries {
					if _, _, err := st.QueryWithOptions(q, nil); err != nil {
						return 0, err
					}
				}
			}
			return passes, nil
		})
		if err != nil {
			return err
		}
		row.UsPass = d.Seconds() * 1e6 / 8
		return nil
	}

	var rows []ShardRow
	single, err := nok.CreateFromFile(tmp+"/single", xmlPath, &nok.Options{PageSize: cfg.PageSize})
	if err != nil {
		return nil, err
	}
	base := ShardRow{Shards: 0}
	err = measure(single, &base)
	single.Close()
	if err != nil {
		return nil, err
	}
	base.Speedup = 1
	rows = append(rows, base)

	for _, n := range []int{1, 2, 4} {
		st, err := shard.CreateFromFile(fmt.Sprintf("%s/shards-%d", tmp, n), xmlPath,
			&shard.Options{Shards: n, Strategy: shard.StrategyPath, Store: &nok.Options{PageSize: cfg.PageSize}})
		if err != nil {
			return nil, err
		}
		row := ShardRow{Shards: n}
		err = measure(st, &row)
		st.Close()
		if err != nil {
			return nil, err
		}
		if row.UsPass > 0 {
			row.Speedup = base.UsPass / row.UsPass
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteShard renders the scale-out experiment; the 4-shard line carries
// the ≥1.5× acceptance budget.
func WriteShard(w io.Writer, rows []ShardRow) {
	fmt.Fprintf(w, "%-10s %14s %9s %8s %14s\n", "topology", "pass(µs)", "speedup", "pruned", "pages scanned")
	for _, r := range rows {
		name := "single"
		if r.Shards > 0 {
			name = fmt.Sprintf("%d shard(s)", r.Shards)
		}
		verdict := ""
		if r.Shards == 4 {
			verdict = fmt.Sprintf("  (budget ≥%.1fx: ", ShardSpeedupMin)
			if r.Speedup >= ShardSpeedupMin {
				verdict += "PASS)"
			} else {
				verdict += "FAIL)"
			}
		}
		fmt.Fprintf(w, "%-10s %14.1f %8.2fx %8d %14d%s\n", name, r.UsPass, r.Speedup, r.Pruned, r.Scanned, verdict)
	}
}

// timeMedian mirrors the harness helper in internal/bench (unexported
// there): fn runs cfg.Runs times, the median duration is reported.
func timeMedian(runs int, fn func() (int, error)) (time.Duration, int, error) {
	if runs < 1 {
		runs = 1
	}
	durs := make([]time.Duration, 0, runs)
	var count int
	for i := 0; i < runs; i++ {
		t0 := time.Now()
		n, err := fn()
		if err != nil {
			return 0, 0, err
		}
		durs = append(durs, time.Since(t0))
		count = n
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	return durs[len(durs)/2], count, nil
}

// ShardSpeedupAt returns the measured speedup for the given width (0 when
// the width was not measured).
func ShardSpeedupAt(rows []ShardRow, shards int) float64 {
	for _, r := range rows {
		if r.Shards == shards {
			return r.Speedup
		}
	}
	return 0
}
