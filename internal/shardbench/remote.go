package shardbench

// remote.go — the fault-tolerant remote-scatter experiment behind
// nokbench -table remote. The same 4-shard, path-routed collection that
// the -table shard experiment uses is measured twice: once opened
// in-process (every member store in the coordinator's address space) and
// once with all four shards rewired to loopback nokserve instances, so
// every query crosses the wire through the remote client's retry/breaker
// stack and the binary /scatter protocol. The budget bounds what the
// network layer is allowed to cost: the remote pass must stay within
// RemoteOverheadMax of the in-process pass.

import (
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"

	"nok"
	"nok/internal/bench"
	"nok/internal/server"
	"nok/internal/shard"
)

// RemoteResult reports the loopback-scatter experiment: the same
// workload pass against the same 4-shard collection, in-process vs over
// HTTP.
type RemoteResult struct {
	LocalUs  float64 // µs per workload pass, all shards in-process
	RemoteUs float64 // µs per workload pass, all shards behind loopback HTTP
	Ratio    float64 // RemoteUs / LocalUs
	Pruned   int64   // server-side pruned shards across one remote pass
}

// RemoteOverheadMax is the acceptance budget: scattering over loopback
// HTTP — connection reuse, binary result frames, server-side pruning —
// may cost at most this multiple of the in-process pass. It bounds
// protocol overhead, not network distance; the workload is sized so
// per-shard evaluation dominates a loopback round trip.
const RemoteOverheadMax = 2.0

// remoteShards is the topology under test, matching the -table shard
// experiment's widest row.
const remoteShards = 4

// Remote measures the workload against the 4-shard collection opened
// in-process, then rewires every shard to a loopback nokserve backend
// and measures again.
func Remote(cfg bench.Config) (*RemoteResult, error) {
	cfg = cfg.WithDefaults()

	tmp, err := os.MkdirTemp("", "nok-remotebench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)
	xmlPath := filepath.Join(tmp, "corpus.xml")
	// 3× the -table shard corpus: the budget compares against in-process
	// evaluation, so per-shard work has to dominate a loopback round trip
	// for the ratio to measure the protocol rather than the syscall floor.
	if err := os.WriteFile(xmlPath, []byte(shardDoc(1200*cfg.Scale)), 0o644); err != nil {
		return nil, err
	}
	coll := filepath.Join(tmp, "coll")
	created, err := shard.CreateFromFile(coll, xmlPath, &shard.Options{
		Shards: remoteShards, Strategy: shard.StrategyPath, Store: &nok.Options{PageSize: cfg.PageSize},
	})
	if err != nil {
		return nil, err
	}
	if err := created.Close(); err != nil {
		return nil, err
	}

	res := &RemoteResult{}

	// In-process baseline.
	local, err := shard.Open(coll, nil)
	if err != nil {
		return nil, err
	}
	res.LocalUs, _, err = measurePass(cfg, local)
	local.Close()
	if err != nil {
		return nil, err
	}

	// Stand up one loopback server per member store — each the same
	// server.Server that nokserve runs — and rewire the manifest so the
	// coordinator reaches every shard through the remote client.
	type member struct {
		store *nok.Store
		srv   *server.Server
		ts    *httptest.Server
	}
	members := make([]member, 0, remoteShards)
	defer func() {
		for _, m := range members {
			m.ts.Close()
			m.store.Close()
		}
	}()
	addrs := make([]string, remoteShards)
	for s := 0; s < remoteShards; s++ {
		st, err := nok.Open(filepath.Join(coll, fmt.Sprintf("shard-%04d", s)), nil)
		if err != nil {
			return nil, err
		}
		srv := server.NewBackend(st, server.Config{CacheEntries: -1})
		ts := httptest.NewServer(srv)
		members = append(members, member{store: st, srv: srv, ts: ts})
		addrs[s] = ts.URL
	}
	if err := shard.SetShardAddrs(coll, addrs); err != nil {
		return nil, err
	}
	rem, err := shard.Open(coll, nil)
	if err != nil {
		return nil, err
	}
	res.RemoteUs, res.Pruned, err = measurePass(cfg, rem)
	rem.Close()
	if err != nil {
		return nil, err
	}

	if res.LocalUs > 0 {
		res.Ratio = res.RemoteUs / res.LocalUs
	}
	return res, nil
}

// measurePass times the shardQueries workload against st: a warm-up
// pass, then the median over cfg.Runs batches, exactly as the -table
// shard experiment measures its topologies. It also reports how many
// shards were pruned during one pass (for the remote topology that
// pruning happens server-side, inside /scatter).
func measurePass(cfg bench.Config, st shardStore) (us float64, pruned int64, err error) {
	for _, q := range shardQueries {
		_, stats, qerr := st.QueryWithOptions(q, nil)
		if qerr != nil {
			return 0, 0, fmt.Errorf("%s: %w", q, qerr)
		}
		for _, sh := range stats.Shards {
			if sh.Skipped {
				pruned++
			}
		}
	}
	d, _, err := timeMedian(cfg.Runs, func() (int, error) {
		const passes = 4
		for i := 0; i < passes; i++ {
			for _, q := range shardQueries {
				if _, _, qerr := st.QueryWithOptions(q, nil); qerr != nil {
					return 0, qerr
				}
			}
		}
		return passes, nil
	})
	if err != nil {
		return 0, 0, err
	}
	return d.Seconds() * 1e6 / 4, pruned, nil
}

// WriteRemote renders the loopback-scatter experiment with its
// acceptance verdict.
func WriteRemote(w io.Writer, r *RemoteResult) {
	fmt.Fprintf(w, "%-22s %14s\n", "topology", "pass(µs)")
	fmt.Fprintf(w, "%-22s %14.1f\n", "4 shards, in-process", r.LocalUs)
	fmt.Fprintf(w, "%-22s %14.1f\n", "4 shards, loopback", r.RemoteUs)
	verdict := "PASS"
	if r.Ratio > RemoteOverheadMax {
		verdict = "FAIL"
	}
	fmt.Fprintf(w, "remote/local = %.2fx  server-side pruned %d/pass  (budget ≤%.1fx: %s)\n",
		r.Ratio, r.Pruned, RemoteOverheadMax, verdict)
}
