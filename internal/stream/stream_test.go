package stream

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"nok/internal/domnav"
	"nok/internal/pattern"
	"nok/internal/samples"
)

func matchIDs(t *testing.T, xml, expr string) []string {
	t.Helper()
	tr, err := pattern.Parse(expr)
	if err != nil {
		t.Fatal(err)
	}
	rs, _, err := Match(strings.NewReader(xml), tr)
	if err != nil {
		t.Fatalf("Match(%q): %v", expr, err)
	}
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.ID.String()
	}
	return out
}

func oracleIDs(t *testing.T, xml, expr string) []string {
	t.Helper()
	tr, err := pattern.Parse(expr)
	if err != nil {
		t.Fatal(err)
	}
	doc := domnav.MustParse(xml)
	var out []string
	for _, n := range domnav.Evaluate(doc, tr) {
		out = append(out, n.ID.String())
	}
	return out
}

func sameStrs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func checkStream(t *testing.T, xml, expr string) {
	t.Helper()
	got := matchIDs(t, xml, expr)
	want := oracleIDs(t, xml, expr)
	if !sameStrs(got, want) {
		t.Errorf("%s:\n got  %v\n want %v", expr, got, want)
	}
}

func TestBibliographyStreaming(t *testing.T) {
	for _, q := range []string{
		samples.PaperQuery,
		`/bib`,
		`/bib/book`,
		`/bib/book/title`,
		`//book[price>100]`,
		`//book[author/last="Stevens"]`,
		`//last`,
		`//book[@year="2000"]/title`,
		`/bib/book[price<100]/title`,
		`//author[last="Stevens"][first="W."]`,
		`//book[editor]`,
		`//missing`,
	} {
		checkStream(t, samples.Bibliography, q)
	}
}

func TestNestedCandidates(t *testing.T) {
	xml := `<r><a><x>1</x><a><x>2</x></a></a><a><x>3</x></a></r>`
	for _, q := range []string{`//a`, `//a/x`, `//a[x="2"]`, `//a//x`} {
		checkStream(t, xml, q)
	}
}

func TestStreamValueResults(t *testing.T) {
	tr := pattern.MustParse(`/bib/book/title`)
	rs, _, err := Match(strings.NewReader(samples.Bibliography), tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 || rs[0].Value != "TCP/IP Illustrated" {
		t.Fatalf("results: %+v", rs)
	}
}

func TestUnsupportedPatterns(t *testing.T) {
	// The following axis cannot stream with bounded buffering.
	tr := pattern.MustParse(`/a/b`)
	// Inject a following edge manually (the parser has no syntax for a
	// standalone following step).
	tr.Root.Children[0].To.Children[0].Axis = pattern.Following
	if err := Supported(tr); !errors.Is(err, ErrUnsupported) {
		t.Errorf("following axis: err = %v", err)
	}
}

func TestBoundedBuffering(t *testing.T) {
	// Many small books: the buffer must stay at the size of one book, not
	// the document.
	var sb strings.Builder
	sb.WriteString("<lib>")
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&sb, "<book><title>t%d</title><price>%d</price></book>", i, i%50)
	}
	sb.WriteString("</lib>")
	tr := pattern.MustParse(`/lib/book[price="13"]/title`)
	rs, stats, err := Match(strings.NewReader(sb.String()), tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 10 {
		t.Errorf("matches = %d, want 10", len(rs))
	}
	// One book subtree = 3 nodes (book, title, price); the buffer must
	// never hold more than one book.
	if stats.MaxBufferedNodes > 3 {
		t.Errorf("MaxBufferedNodes = %d, want <= 3 (one book)", stats.MaxBufferedNodes)
	}
	if stats.Candidates != 500 {
		t.Errorf("Candidates = %d, want 500", stats.Candidates)
	}
}

func TestEarlyStop(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<lib>")
	for i := 0; i < 100; i++ {
		sb.WriteString("<book><x>v</x></book>")
	}
	sb.WriteString("</lib>")
	tr := pattern.MustParse(`/lib/book[x="v"]`)
	n := 0
	stats, err := MatchFunc(strings.NewReader(sb.String()), tr, func(Result) bool {
		n++
		return n < 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("emitted %d, want 3", n)
	}
	if stats.Candidates >= 100 {
		t.Errorf("early stop should not process all candidates (processed %d)", stats.Candidates)
	}
}

func TestChainMatching(t *testing.T) {
	cases := []struct {
		path  []string
		chain []segment
		want  bool
	}{
		{[]string{"a", "b"}, []segment{{test: "a"}, {test: "b"}}, true},
		{[]string{"a", "b"}, []segment{{test: "a"}, {test: "c"}}, false},
		{[]string{"a"}, []segment{{test: "a"}, {test: "b"}}, false},
		{[]string{"a", "x", "b"}, []segment{{test: "a"}, {test: "b", gap: true}}, true},
		{[]string{"a", "b"}, []segment{{test: "a"}, {test: "b", gap: true}}, true},
		{[]string{"b"}, []segment{{test: "b", gap: true}}, true},
		{[]string{"x", "y", "b"}, []segment{{test: "b", gap: true}}, true},
		{[]string{"a", "b", "c"}, []segment{{test: "a"}, {test: "b"}}, false}, // must end at candidate
		{[]string{"a", "q", "b", "r", "c"}, []segment{{test: "a"}, {test: "b", gap: true}, {test: "c", gap: true}}, true},
		{[]string{"a", "b"}, []segment{{test: "*"}, {test: "b"}}, true},
	}
	for i, c := range cases {
		if got := matchChain(c.path, c.chain); got != c.want {
			t.Errorf("case %d: matchChain(%v) = %v, want %v", i, c.path, got, c.want)
		}
	}
}

func TestDeepChainsAgainstOracle(t *testing.T) {
	xml := `<a><b><c><d>x</d></c></b><b><c><d>y</d></c><e/></b></a>`
	for _, q := range []string{
		`/a/b/c/d`,
		`/a//d`,
		`//c/d`,
		`/a/b[e]/c/d`,
		`//b[c/d="y"]`,
		`/a/*/c`,
	} {
		checkStream(t, xml, q)
	}
}

func TestSinglePass(t *testing.T) {
	// Events consumed must equal the document's event count: one pass.
	xml := samples.Bibliography
	tr := pattern.MustParse(`//book`)
	_, stats, err := Match(strings.NewReader(xml), tr)
	if err != nil {
		t.Fatal(err)
	}
	// 42 elements → 84 start/end events plus text events.
	if stats.Events == 0 || stats.Events > 200 {
		t.Errorf("Events = %d, suspicious for one pass", stats.Events)
	}
}

func TestWildcardChains(t *testing.T) {
	xml := `<r><a><k>1</k></a><b><k>2</k></b></r>`
	for _, q := range []string{`/r/*/k`, `/*/a/k`, `//*[k="2"]`, `/r/*`} {
		checkStream(t, xml, q)
	}
}

func TestAttributeAnchors(t *testing.T) {
	xml := `<r><item id="1"><v>x</v></item><item id="2"><v>y</v></item></r>`
	for _, q := range []string{
		`/r/item/@id`,
		`//item[@id="2"]`,
		`//item[@id="2"]/v`,
		`//@id`,
	} {
		checkStream(t, xml, q)
	}
}

func TestStreamFromPipe(t *testing.T) {
	// The evaluator must work on non-seekable readers (its whole point).
	pr, pw := io.Pipe()
	go func() {
		pw.Write([]byte(samples.Bibliography))
		pw.Close()
	}()
	tr := pattern.MustParse(`//book[price<100]/title`)
	rs, _, err := Match(pr, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("results: %v", rs)
	}
}

func TestMalformedStreamSurfacesError(t *testing.T) {
	tr := pattern.MustParse(`//a`)
	if _, _, err := Match(strings.NewReader(`<a><b></a>`), tr); err == nil {
		t.Error("malformed stream should error")
	}
	if _, _, err := Match(strings.NewReader(`<a>`), tr); err == nil {
		t.Error("truncated stream should error")
	}
}
