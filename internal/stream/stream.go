// Package stream evaluates path queries over streaming XML in a single
// pass — the paper's §4.2 observation made operational: the string
// representation is exactly a SAX event stream, so NoK pattern matching
// runs against the stream with a buffer bounded by the largest candidate
// subtree (the streaming analogue of Proposition 1).
//
// The evaluator splits the pattern into an *ancestor chain* — the maximal
// pure chain of steps from the root with one child each and no value
// constraints — and the *anchor subtree* below it. The chain is checked
// against the open-element stack in O(depth) per start tag; whenever a
// start tag completes the chain, the element's subtree is buffered and the
// anchor subtree pattern is matched against the buffer when the element
// closes. Memory is therefore proportional to the largest matched
// candidate subtree, never the document.
//
// Patterns whose global (following) axis crosses subtree boundaries cannot
// be evaluated this way and are rejected by Supported.
package stream

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"nok/internal/dewey"
	"nok/internal/domnav"
	"nok/internal/pattern"
	"nok/internal/sax"
	"nok/internal/symtab"
)

// ErrUnsupported is returned for patterns that cannot be evaluated in one
// streaming pass with bounded buffering.
var ErrUnsupported = errors.New("stream: pattern not supported for streaming evaluation")

// Stats reports the footprint of one streaming evaluation — the numbers
// behind the paper's "single scan, very small amount of main memory".
type Stats struct {
	// Events is the number of SAX events consumed (exactly one pass).
	Events int64
	// Candidates is the number of anchor candidates buffered.
	Candidates int64
	// MaxBufferedNodes is the peak size of the subtree buffer in nodes.
	MaxBufferedNodes int
	// Matches is the number of returning-node matches emitted.
	Matches int64
}

// Result is one returning-node match.
type Result struct {
	ID    dewey.ID
	Value string
}

// segment is one step of the ancestor chain. Gap means the step is reached
// through the descendant axis (any number of intermediate elements).
type segment struct {
	test string
	gap  bool
}

// plan is a compiled streaming query.
type plan struct {
	tree   *pattern.Tree
	chain  []segment     // ends at the anchor
	anchor *pattern.Node // root of the in-buffer subpattern
}

// Supported reports whether t can be evaluated in a single streaming pass,
// compiling it if so.
func compile(t *pattern.Tree) (*plan, error) {
	// The following axis needs arbitrary lookahead beyond a subtree.
	unsupported := false
	t.Walk(func(n *pattern.Node, _ int) {
		for _, e := range n.Children {
			if e.Axis == pattern.Following {
				unsupported = true
			}
		}
	})
	if unsupported {
		return nil, fmt.Errorf("%w: following axis", ErrUnsupported)
	}
	if len(t.Root.Children) != 1 {
		return nil, fmt.Errorf("%w: multiple top-level branches", ErrUnsupported)
	}

	var chain []segment
	edge := t.Root.Children[0]
	cur := edge.To
	gap := edge.Axis == pattern.Descendant
	for {
		chain = append(chain, segment{test: cur.Test, gap: gap})
		// Stop at the first node with branching, a value constraint, a
		// sibling-order arc, or the returning node itself: everything from
		// here down is matched within the buffered subtree (and the
		// returning node must stay inside the buffer to be collected).
		if len(cur.Children) != 1 || cur.HasValueConstraint() ||
			len(cur.PrecededBy) > 0 || cur == t.Return {
			break
		}
		next := cur.Children[0]
		cur = next.To
		gap = next.Axis == pattern.Descendant
		if len(cur.PrecededBy) > 0 {
			return nil, fmt.Errorf("%w: sibling arc on the ancestor chain", ErrUnsupported)
		}
	}
	return &plan{tree: t, chain: chain, anchor: cur}, nil
}

// Supported reports whether the pattern streams.
func Supported(t *pattern.Tree) error {
	_, err := compile(t)
	return err
}

// Match evaluates the pattern over the XML stream and returns the
// returning-node matches in document order.
func Match(r io.Reader, t *pattern.Tree) ([]Result, *Stats, error) {
	var out []Result
	stats, err := MatchFunc(r, t, func(res Result) bool {
		out = append(out, res)
		return true
	})
	if err != nil {
		return nil, nil, err
	}
	// Nested anchor candidates can emit overlapping matches out of global
	// order; normalize.
	sort.Slice(out, func(i, j int) bool { return dewey.Compare(out[i].ID, out[j].ID) < 0 })
	dedup := out[:0]
	for i, r := range out {
		if i == 0 || dewey.Compare(out[i-1].ID, r.ID) != 0 {
			dedup = append(dedup, r)
		}
	}
	return dedup, stats, nil
}

// MatchFunc evaluates the pattern, invoking emit for every match as soon
// as its candidate subtree closes. Returning false from emit stops the
// evaluation early.
func MatchFunc(r io.Reader, t *pattern.Tree, emit func(Result) bool) (*Stats, error) {
	p, err := compile(t)
	if err != nil {
		return nil, err
	}
	m := &streamMatcher{plan: p, emit: emit, stats: &Stats{}}
	sc := sax.NewScanner(r)
	for {
		ev, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return m.stats, err
		}
		m.stats.Events++
		stop, err := m.event(ev)
		if err != nil {
			return m.stats, err
		}
		if stop {
			// Early stop requested by emit: the rest of the stream is
			// intentionally unread.
			return m.stats, nil
		}
	}
	if m.depth != 0 {
		return m.stats, errors.New("stream: document ended with open elements")
	}
	return m.stats, nil
}

// streamMatcher holds the single-pass state.
type streamMatcher struct {
	plan  *plan
	emit  func(Result) bool
	stats *Stats

	// Open-element state outside any buffer.
	tags  []string
	ords  []uint32 // child counters per open element
	id    dewey.ID
	depth int

	// Buffer state: non-nil while inside a candidate subtree.
	bufRoot  *domnav.Node
	bufStack []*domnav.Node
	bufText  []*strings.Builder
	bufOrder int
	// anchorID is the Dewey ID of the buffered candidate's root.
	anchorID dewey.ID
	// outerTags snapshots the open tags above the buffer root.
	outerTags []string
}

func (m *streamMatcher) event(ev sax.Event) (bool, error) {
	switch ev.Kind {
	case sax.StartElement:
		if stop := m.openElem(ev.Name); stop {
			return true, nil
		}
		for _, a := range ev.Attrs {
			if stop := m.openElem(symtab.AttrPrefix + a.Name); stop {
				return true, nil
			}
			if m.bufRoot != nil {
				m.bufText[len(m.bufText)-1].WriteString(a.Value)
			}
			if stop, err := m.closeElem(false); err != nil || stop {
				return stop, err
			}
		}
	case sax.EndElement:
		return m.closeElem(true)
	case sax.Text:
		if m.bufRoot != nil && len(m.bufText) > 0 {
			m.bufText[len(m.bufText)-1].WriteString(ev.Data)
		}
	}
	return false, nil
}

func (m *streamMatcher) openElem(name string) (stop bool) {
	// Dewey maintenance.
	if m.depth == 0 {
		m.id = append(m.id, 0)
	} else {
		m.ords[len(m.ords)-1]++
		m.id = append(m.id, m.ords[len(m.ords)-1])
	}
	m.ords = append(m.ords, 0)
	m.tags = append(m.tags, name)
	m.depth++

	if m.bufRoot != nil {
		m.pushBufferNode(name)
		return false
	}
	// Candidate check: does the open stack complete the ancestor chain?
	if matchChain(m.tags, m.plan.chain) {
		m.stats.Candidates++
		m.anchorID = m.id.Clone()
		m.outerTags = append([]string(nil), m.tags[:len(m.tags)-1]...)
		m.bufOrder = 0
		m.pushBufferNode(name)
	}
	return false
}

func (m *streamMatcher) pushBufferNode(name string) {
	n := &domnav.Node{Name: name, Order: m.bufOrder}
	m.bufOrder++
	if len(m.bufStack) == 0 {
		n.ID = dewey.Root()
		n.Level = 1
		m.bufRoot = n
	} else {
		p := m.bufStack[len(m.bufStack)-1]
		n.Parent = p
		p.Children = append(p.Children, n)
		n.ID = p.ID.Child(uint32(len(p.Children)))
		n.Level = p.Level + 1
	}
	m.bufStack = append(m.bufStack, n)
	m.bufText = append(m.bufText, &strings.Builder{})
	if m.bufOrder > m.stats.MaxBufferedNodes {
		m.stats.MaxBufferedNodes = m.bufOrder
	}
}

func (m *streamMatcher) closeElem(trim bool) (bool, error) {
	if m.bufRoot != nil {
		n := m.bufStack[len(m.bufStack)-1]
		text := m.bufText[len(m.bufText)-1].String()
		if trim {
			text = strings.TrimSpace(text)
		}
		n.Value = text
		n.End = m.bufOrder - 1
		m.bufStack = m.bufStack[:len(m.bufStack)-1]
		m.bufText = m.bufText[:len(m.bufText)-1]
		if len(m.bufStack) == 0 {
			// Candidate subtree complete: evaluate and release.
			stop := m.evaluateBuffer()
			m.bufRoot = nil
			if stop {
				return true, nil
			}
		}
	}
	m.depth--
	m.tags = m.tags[:len(m.tags)-1]
	m.ords = m.ords[:len(m.ords)-1]
	m.id = m.id[:len(m.id)-1]
	return false, nil
}

// evaluateBuffer matches the anchor subpattern against the buffered
// subtree. Candidates nested inside the buffer are handled here too: every
// buffered node that completes the chain (using the outer stack plus the
// in-buffer path) anchors its own evaluation.
func (m *streamMatcher) evaluateBuffer() (stop bool) {
	var doc domnav.Doc
	doc.Root = m.bufRoot
	collect := func(n *domnav.Node) {
		doc.Nodes = append(doc.Nodes, n)
	}
	var walk func(n *domnav.Node)
	walk = func(n *domnav.Node) {
		collect(n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(m.bufRoot)

	synth := &pattern.Tree{Root: &pattern.Node{}, Return: m.plan.tree.Return}
	synth.Root.Children = []*pattern.Edge{{Axis: pattern.Child, To: m.plan.anchor}}

	// Find candidate anchors inside the buffer (the root always is one).
	path := append([]string(nil), m.outerTags...)
	var anchors []*domnav.Node
	var findAnchors func(n *domnav.Node)
	findAnchors = func(n *domnav.Node) {
		path = append(path, n.Name)
		if matchChain(path, m.plan.chain) {
			anchors = append(anchors, n)
		}
		for _, c := range n.Children {
			findAnchors(c)
		}
		path = path[:len(path)-1]
	}
	findAnchors(m.bufRoot)

	for _, a := range anchors {
		sub := subDoc(&doc, a)
		for _, res := range domnav.Evaluate(sub, synth) {
			globalID := m.globalID(a, res)
			m.stats.Matches++
			if !m.emit(Result{ID: globalID, Value: res.Value}) {
				return true
			}
		}
	}
	return false
}

// subDoc restricts the buffered doc to the subtree rooted at a. Node IDs
// stay those of the full buffer; Evaluate only needs structure and the
// Nodes list for the following axis, which compile() already excluded.
func subDoc(doc *domnav.Doc, a *domnav.Node) *domnav.Doc {
	if a == doc.Root {
		return doc
	}
	sub := &domnav.Doc{Root: a}
	var walk func(n *domnav.Node)
	walk = func(n *domnav.Node) {
		sub.Nodes = append(sub.Nodes, n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(a)
	return sub
}

// globalID translates a buffer-relative match to its document Dewey ID:
// the anchor candidate's global ID plus the path from the buffer-internal
// anchor node down to the match.
func (m *streamMatcher) globalID(anchor *domnav.Node, res *domnav.Node) dewey.ID {
	// Path of child ordinals from anchor to res.
	var rel []uint32
	for n := res; n != anchor; n = n.Parent {
		// Find n's ordinal among its parent's children.
		ord := uint32(0)
		for i, c := range n.Parent.Children {
			if c == n {
				ord = uint32(i + 1)
				break
			}
		}
		rel = append(rel, ord)
	}
	// The anchor's own global ID: for the buffer root it is anchorID; for
	// nested anchors extend from the buffer root.
	base := m.anchorID.Clone()
	if anchor != m.bufRoot {
		var toAnchor []uint32
		for n := anchor; n != m.bufRoot; n = n.Parent {
			ord := uint32(0)
			for i, c := range n.Parent.Children {
				if c == n {
					ord = uint32(i + 1)
					break
				}
			}
			toAnchor = append(toAnchor, ord)
		}
		for i := len(toAnchor) - 1; i >= 0; i-- {
			base = append(base, toAnchor[i])
		}
	}
	for i := len(rel) - 1; i >= 0; i-- {
		base = append(base, rel[i])
	}
	return base
}

// matchChain reports whether the open-tag path (root..candidate) matches
// the ancestor chain: non-gap segments consume exactly one path element,
// gap segments allow any number of skipped elements before their match,
// and the last segment must land exactly on the candidate (the path end).
func matchChain(path []string, chain []segment) bool {
	// DP over (path position, segment index), small enough for recursion
	// with memoization-free backtracking: len(chain) ≤ pattern size.
	var rec func(pi, si int) bool
	rec = func(pi, si int) bool {
		if si == len(chain) {
			return pi == len(path)
		}
		seg := chain[si]
		if seg.gap {
			for p := pi; p < len(path); p++ {
				if testMatches(seg.test, path[p]) && rec(p+1, si+1) {
					return true
				}
			}
			return false
		}
		if pi < len(path) && testMatches(seg.test, path[pi]) {
			return rec(pi+1, si+1)
		}
		return false
	}
	return rec(0, 0)
}

func testMatches(test, tag string) bool { return test == "*" || test == tag }
