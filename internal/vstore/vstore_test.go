package vstore

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
	"testing/quick"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	s, err := Create(filepath.Join(t.TempDir(), "values.dat"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestAppendGetRoundTrip(t *testing.T) {
	s := newStore(t)
	values := [][]byte{
		[]byte("1994"),
		[]byte("TCP/IP Illustrated"),
		[]byte("Addison-Wesley"),
		[]byte("Stevens"),
		[]byte("65.95"),
		{}, // empty value is legal
	}
	var offs []int64
	for _, v := range values {
		off, err := s.Append(v)
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, off)
	}
	for i, v := range values {
		got, err := s.Get(offs[i])
		if err != nil {
			t.Fatalf("Get(%d): %v", offs[i], err)
		}
		if !bytes.Equal(got, v) {
			t.Errorf("Get(%d) = %q, want %q", offs[i], got, v)
		}
	}
}

func TestDeduplication(t *testing.T) {
	s := newStore(t)
	o1, err := s.Append([]byte("Stevens"))
	if err != nil {
		t.Fatal(err)
	}
	o2, err := s.Append([]byte("W."))
	if err != nil {
		t.Fatal(err)
	}
	o3, err := s.Append([]byte("Stevens"))
	if err != nil {
		t.Fatal(err)
	}
	if o1 != o3 {
		t.Errorf("duplicate value got offset %d, want %d", o3, o1)
	}
	if o1 == o2 {
		t.Error("distinct values share an offset")
	}
	sizeBefore := s.Size()
	if _, err := s.Append([]byte("Stevens")); err != nil {
		t.Fatal(err)
	}
	if s.Size() != sizeBefore {
		t.Error("deduplicated append grew the file")
	}
}

func TestGetBadOffsets(t *testing.T) {
	s := newStore(t)
	if _, err := s.Append([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	for _, off := range []int64{-1, 3, 100} {
		if _, err := s.Get(off); err == nil {
			t.Errorf("Get(%d): expected error", off)
		}
	}
}

func TestOversizedValueRejected(t *testing.T) {
	s := newStore(t)
	if _, err := s.Append(make([]byte, MaxValueLen+1)); err == nil {
		t.Error("oversized value should be rejected")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.dat")
	s, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	off1, _ := s.Append([]byte("alpha"))
	off2, _ := s.Append([]byte("beta"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, c := range []struct {
		off  int64
		want string
	}{{off1, "alpha"}, {off2, "beta"}} {
		got, err := s2.Get(c.off)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != c.want {
			t.Errorf("Get(%d) = %q, want %q", c.off, got, c.want)
		}
	}
	// Appends after reopen extend the file.
	off3, err := s2.Append([]byte("gamma"))
	if err != nil {
		t.Fatal(err)
	}
	if off3 <= off2 {
		t.Errorf("append after reopen got offset %d, want > %d", off3, off2)
	}
}

func TestScanVisitsAllRecordsInOrder(t *testing.T) {
	s := newStore(t)
	var want []string
	for i := 0; i < 50; i++ {
		v := fmt.Sprintf("value-%03d", i)
		want = append(want, v)
		if _, err := s.Append([]byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	lastOff := int64(-1)
	err := s.Scan(func(off int64, v []byte) bool {
		if off <= lastOff {
			t.Errorf("offsets not increasing: %d after %d", off, lastOff)
		}
		lastOff = off
		got = append(got, string(v))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scanned %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	s := newStore(t)
	for i := 0; i < 10; i++ {
		if _, err := s.Append([]byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	err := s.Scan(func(off int64, v []byte) bool {
		n++
		return n < 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("visited %d records, want 3", n)
	}
}

func TestHashIsStable(t *testing.T) {
	// The value index persists hashes on disk; they must be deterministic.
	if Hash([]byte("Stevens")) != Hash([]byte("Stevens")) {
		t.Error("Hash not deterministic")
	}
	if Hash([]byte("Stevens")) == Hash([]byte("stevens")) {
		t.Error("suspicious collision (case)")
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	s := newStore(t)
	f := func(v []byte) bool {
		if len(v) > 1<<16 {
			v = v[:1<<16]
		}
		off, err := s.Append(v)
		if err != nil {
			return false
		}
		got, err := s.Get(off)
		return err == nil && bytes.Equal(got, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFlushAndCloseSemantics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.dat")
	s, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	off, err := s.Append([]byte("durable"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// After Flush (and before Close) another handle sees the data.
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get(off)
	if err != nil || string(got) != "durable" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	// Double close is safe; operations after close fail.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if _, err := s.Append([]byte("x")); err == nil {
		t.Error("Append after Close should fail")
	}
	if _, err := s.Get(0); err == nil {
		t.Error("Get after Close should fail")
	}
	if err := s.Flush(); err == nil {
		t.Error("Flush after Close should fail")
	}
	if err := s.Scan(func(int64, []byte) bool { return true }); err == nil {
		t.Error("Scan after Close should fail")
	}
}

func TestOpenMissingFile(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope.dat")); err == nil {
		t.Error("Open of missing file should fail")
	}
}

func TestLargeValuesCrossVarintBoundaries(t *testing.T) {
	s := newStore(t)
	// Lengths around the 1- and 2-byte uvarint boundaries.
	for _, n := range []int{0, 1, 127, 128, 129, 16383, 16384, 70000} {
		v := bytes.Repeat([]byte{byte(n % 251)}, n)
		off, err := s.Append(v)
		if err != nil {
			t.Fatalf("Append(%d bytes): %v", n, err)
		}
		got, err := s.Get(off)
		if err != nil || !bytes.Equal(got, v) {
			t.Fatalf("round trip of %d bytes failed: %v", n, err)
		}
	}
	// Scan visits them all with correct lengths.
	var lens []int
	if err := s.Scan(func(off int64, v []byte) bool {
		lens = append(lens, len(v))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 127, 128, 129, 16383, 16384, 70000}
	if len(lens) != len(want) {
		t.Fatalf("scanned %d records: %v", len(lens), lens)
	}
	for i := range want {
		if lens[i] != want[i] {
			t.Errorf("record %d len = %d, want %d", i, lens[i], want[i])
		}
	}
}
