// Package vstore implements the paper's value data file (§4.1).
//
// The storage scheme separates structure from values: element and attribute
// content is stored out-of-line as a sequence of (len, value) records in a
// data file, exactly as in the paper's Example 3. Records are addressed by
// their byte offset; the Dewey-ID B+ tree maps node IDs to offsets, and the
// hashed-value B+ tree maps values back to Dewey IDs.
//
// Identical values can share one record ("If there are more than one node
// with the same value, we can keep only one copy"): the Writer keeps a
// value→offset table during bulk load and on update-time appends.
package vstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"
	"sync"

	"nok/internal/obs"
	"nok/internal/vfs"
)

// Process-wide value-store counters, exposed through the default obs
// registry.
var (
	mReads       = obs.Default.Counter("nok_vstore_reads_total", "value records read from data files")
	mAppends     = obs.Default.Counter("nok_vstore_appends_total", "value records appended to data files")
	mDedupReuses = obs.Default.Counter("nok_vstore_dedup_reuses_total", "appends satisfied by an existing identical record")
)

// MaxValueLen bounds a single record; longer values are rejected rather
// than silently truncated.
const MaxValueLen = 1 << 24 // 16 MiB

// On-disk header (format version 2): records used to start at offset 0;
// the checksummed header lets Open distinguish a value file from arbitrary
// bytes and detect a damaged prefix.
//
//	"NKVS" | version u16 | headerLen u16 | reserved u32 | crc32c u32
//
// The CRC covers the first 12 bytes. Record offsets are absolute file
// offsets, so the first record sits at HeaderLen.
const (
	headerMagic   = "NKVS"
	headerVersion = 1
	// HeaderLen is the size of the file header; the first record starts here.
	HeaderLen = 16
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Errors returned by the store.
var (
	// ErrBadOffset is returned when Get is pointed at a non-record position.
	ErrBadOffset = errors.New("vstore: invalid record offset")
	// ErrBadHeader is returned by Open when the file header is missing,
	// damaged, or from an unsupported format version.
	ErrBadHeader = errors.New("vstore: bad file header")
)

// Hash returns the 64-bit hash used as the key of the value B+ tree. The
// paper hashes values to fixed-size comparable keys and resolves collisions
// through the data file; FNV-1a is stable across runs, which the on-disk
// index requires.
func Hash(value []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(value)
	return h.Sum64()
}

// Store is an append-only value data file. It is safe for concurrent use.
type Store struct {
	mu   sync.Mutex
	f    vfs.File
	tail *offsetWriter
	w    *bufio.Writer
	size int64 // logical end of file including buffered bytes

	// dedup maps value hash → offset of a record with that hash. Collisions
	// are resolved by re-reading the record; a hash collision between two
	// different values merely costs a duplicate record, never corruption.
	dedup map[uint64]int64

	readBuf []byte
	closed  bool
}

// offsetWriter adapts the positional vfs.File to the io.Writer the append
// buffer needs, tracking the append position explicitly.
type offsetWriter struct {
	f   vfs.File
	off int64
}

func (w *offsetWriter) Write(p []byte) (int, error) {
	n, err := w.f.WriteAt(p, w.off)
	w.off += int64(n)
	return n, err
}

func encodeHeader() []byte {
	hdr := make([]byte, HeaderLen)
	copy(hdr[0:4], headerMagic)
	binary.BigEndian.PutUint16(hdr[4:6], headerVersion)
	binary.BigEndian.PutUint16(hdr[6:8], HeaderLen)
	binary.BigEndian.PutUint32(hdr[12:16], crc32.Checksum(hdr[:12], crcTable))
	return hdr
}

// Create creates a new value store at path, failing if it exists.
func Create(path string) (*Store, error) { return CreateFS(vfs.OS, path) }

// CreateFS is Create on an explicit file system.
func CreateFS(fsys vfs.FS, path string) (*Store, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.WriteAt(encodeHeader(), 0); err != nil {
		f.Close()
		fsys.Remove(path)
		return nil, err
	}
	tail := &offsetWriter{f: f, off: HeaderLen}
	return &Store{
		f:     f,
		tail:  tail,
		w:     bufio.NewWriterSize(tail, 256<<10),
		size:  HeaderLen,
		dedup: make(map[uint64]int64),
	}, nil
}

// Open opens an existing value store. The dedup table is rebuilt lazily:
// Open itself does not scan the file; appended values after Open simply may
// not dedup against pre-existing records.
func Open(path string) (*Store, error) { return OpenFS(vfs.OS, path) }

// OpenFS is Open on an explicit file system. The file header is verified:
// a missing, damaged, or wrong-version header fails with ErrBadHeader.
func OpenFS(fsys vfs.FS, path string) (*Store, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	var hdr [HeaderLen]byte
	if n, err := f.ReadAt(hdr[:], 0); err != nil && err != io.EOF {
		f.Close()
		return nil, err
	} else if n < HeaderLen {
		f.Close()
		return nil, fmt.Errorf("%w: %s: truncated header (%d bytes)", ErrBadHeader, path, n)
	}
	if string(hdr[0:4]) != headerMagic {
		f.Close()
		return nil, fmt.Errorf("%w: %s: bad magic %q (pre-checksum file? rebuild the store)", ErrBadHeader, path, hdr[0:4])
	}
	if crc32.Checksum(hdr[:12], crcTable) != binary.BigEndian.Uint32(hdr[12:16]) {
		f.Close()
		return nil, fmt.Errorf("%w: %s: header checksum mismatch", ErrBadHeader, path)
	}
	if v := binary.BigEndian.Uint16(hdr[4:6]); v != headerVersion {
		f.Close()
		return nil, fmt.Errorf("%w: %s: unsupported version %d", ErrBadHeader, path, v)
	}
	tail := &offsetWriter{f: f, off: st.Size()}
	return &Store{
		f:     f,
		tail:  tail,
		w:     bufio.NewWriterSize(tail, 256<<10),
		size:  st.Size(),
		dedup: make(map[uint64]int64),
	}, nil
}

// Append stores value and returns the offset of its record. Identical
// values (by content) may be deduplicated to a previously returned offset.
func (s *Store) Append(value []byte) (int64, error) {
	if len(value) > MaxValueLen {
		return 0, fmt.Errorf("vstore: value of %d bytes exceeds limit %d", len(value), MaxValueLen)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, errors.New("vstore: closed")
	}
	h := Hash(value)
	if off, ok := s.dedup[h]; ok {
		existing, err := s.getLocked(off)
		if err == nil && string(existing) == string(value) {
			mDedupReuses.Inc()
			return off, nil
		}
		// Hash collision with a different value, or unreadable record:
		// fall through and write a fresh copy.
	}
	off := s.size
	var lenBuf [binary.MaxVarintLen32]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(value)))
	if _, err := s.w.Write(lenBuf[:n]); err != nil {
		return 0, err
	}
	if _, err := s.w.Write(value); err != nil {
		return 0, err
	}
	s.size += int64(n) + int64(len(value))
	s.dedup[h] = off
	mAppends.Inc()
	return off, nil
}

// Get returns the value stored at offset. The returned slice is freshly
// allocated.
func (s *Store) Get(offset int64) ([]byte, error) {
	mReads.Inc()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("vstore: closed")
	}
	v, err := s.getLocked(offset)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, nil
}

// getLocked reads the record at offset into s.readBuf and returns a view of
// it. Buffered writes are flushed first when the offset lies beyond the
// synced region.
func (s *Store) getLocked(offset int64) ([]byte, error) {
	if offset < HeaderLen || offset >= s.size {
		return nil, fmt.Errorf("%w: %d (size %d)", ErrBadOffset, offset, s.size)
	}
	if s.w.Buffered() > 0 {
		if err := s.w.Flush(); err != nil {
			return nil, err
		}
	}
	var hdr [binary.MaxVarintLen32]byte
	n, err := s.f.ReadAt(hdr[:], offset)
	if err != nil && err != io.EOF {
		return nil, err
	}
	vlen, consumed := binary.Uvarint(hdr[:n])
	if consumed <= 0 || vlen > MaxValueLen {
		return nil, fmt.Errorf("%w: %d (bad length header)", ErrBadOffset, offset)
	}
	if offset+int64(consumed)+int64(vlen) > s.size {
		return nil, fmt.Errorf("%w: %d (record overruns file)", ErrBadOffset, offset)
	}
	if cap(s.readBuf) < int(vlen) {
		s.readBuf = make([]byte, vlen)
	}
	buf := s.readBuf[:vlen]
	if _, err := io.ReadFull(io.NewSectionReader(s.f, offset+int64(consumed), int64(vlen)), buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Size returns the logical file size in bytes.
func (s *Store) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Flush forces buffered appends to the OS and syncs.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("vstore: closed")
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	return s.f.Sync()
}

// Close flushes and closes the store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return err
	}
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// Scan calls fn for every record in offset order, stopping early if fn
// returns false. It flushes buffered writes first.
func (s *Store) Scan(fn func(offset int64, value []byte) bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("vstore: closed")
	}
	if s.w.Buffered() > 0 {
		if err := s.w.Flush(); err != nil {
			return err
		}
	}
	r := bufio.NewReaderSize(io.NewSectionReader(s.f, HeaderLen, s.size-HeaderLen), 256<<10)
	off := int64(HeaderLen)
	var buf []byte
	for off < s.size {
		vlen, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("vstore: scan at %d: %w", off, err)
		}
		hdrLen := uvarintLen(vlen)
		if vlen > MaxValueLen || off+int64(hdrLen)+int64(vlen) > s.size {
			return fmt.Errorf("vstore: scan at %d: corrupt record length %d", off, vlen)
		}
		if cap(buf) < int(vlen) {
			buf = make([]byte, vlen)
		}
		buf = buf[:vlen]
		if _, err := io.ReadFull(r, buf); err != nil {
			return fmt.Errorf("vstore: scan at %d: %w", off, err)
		}
		if !fn(off, buf) {
			return nil
		}
		off += int64(hdrLen) + int64(vlen)
	}
	return nil
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
