package join

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nok/internal/stree"
)

// TestQuickContainedInMatchesNaive checks the sweep implementation against
// a quadratic reference on arbitrary nested interval sets.
func TestQuickContainedInMatchesNaive(t *testing.T) {
	f := func(seed int64, nIv, nPt uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ivs := randomTreeIntervals(rng, 1+int(nIv)%40)
		var pts []uint64
		for i := 0; i < 1+int(nPt)%60; i++ {
			pts = append(pts, uint64(rng.Intn(200)))
		}
		// points must be sorted for the sweep.
		for i := 1; i < len(pts); i++ {
			for j := i; j > 0 && pts[j] < pts[j-1]; j-- {
				pts[j], pts[j-1] = pts[j-1], pts[j]
			}
		}
		got := ContainedIn(pts, ivs)
		gotSet := map[int]bool{}
		for _, i := range got {
			gotSet[i] = true
		}
		for i, p := range pts {
			want := false
			for _, iv := range ivs {
				if iv.Start < p && p < iv.End {
					want = true
				}
			}
			if gotSet[i] != want {
				t.Logf("point %d (%d): got %v want %v (ivs %v)", i, p, gotSet[i], want, ivs)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickExistsWithin checks the binary-search predicate against a scan.
func TestQuickExistsWithin(t *testing.T) {
	f := func(rawPts []uint16, start, span uint16) bool {
		pts := make([]uint64, len(rawPts))
		for i, p := range rawPts {
			pts[i] = uint64(p)
		}
		for i := 1; i < len(pts); i++ {
			for j := i; j > 0 && pts[j] < pts[j-1]; j-- {
				pts[j], pts[j-1] = pts[j-1], pts[j]
			}
		}
		iv := stree.Interval{Start: uint64(start), End: uint64(start) + uint64(span)}
		want := false
		for _, p := range pts {
			if p > iv.Start && p < iv.End {
				want = true
			}
		}
		return ExistsWithin(pts, iv) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
