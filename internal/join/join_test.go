package join

import (
	"math/rand"
	"sort"
	"testing"

	"nok/internal/stree"
)

func iv(s, e uint64) stree.Interval { return stree.Interval{Start: s, End: e} }

func TestExistsWithin(t *testing.T) {
	pts := []uint64{5, 10, 20}
	cases := []struct {
		iv   stree.Interval
		want bool
	}{
		{iv(0, 6), true},    // contains 5
		{iv(5, 10), false},  // strict: neither endpoint counts
		{iv(4, 11), true},   // contains 5 and 10
		{iv(21, 30), false}, // nothing after 20
		{iv(0, 5), false},   // 5 not strictly inside
		{iv(19, 21), true},  // contains 20
	}
	for _, c := range cases {
		if got := ExistsWithin(pts, c.iv); got != c.want {
			t.Errorf("ExistsWithin(%v) = %v, want %v", c.iv, got, c.want)
		}
	}
	if ExistsWithin(nil, iv(0, 100)) {
		t.Error("empty points should never match")
	}
}

func TestExistsAfter(t *testing.T) {
	pts := []uint64{5, 10}
	if !ExistsAfter(pts, iv(0, 7)) {
		t.Error("10 follows end 7")
	}
	if ExistsAfter(pts, iv(0, 10)) {
		t.Error("strictness: nothing after end 10")
	}
	if ExistsAfter(nil, iv(0, 0)) {
		t.Error("empty points")
	}
}

func TestContainedIn(t *testing.T) {
	// Intervals nest or are disjoint (tree intervals).
	ivs := []stree.Interval{iv(0, 100), iv(5, 20), iv(30, 40), iv(200, 300)}
	pts := []uint64{3, 10, 25, 35, 100, 150, 250, 400}
	got := ContainedIn(pts, ivs)
	// 3 in (0,100); 10 in both; 25 in (0,100); 35 in both; 100 not strict;
	// 150 outside; 250 in (200,300); 400 outside.
	want := []int{0, 1, 2, 3, 6}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestAfterAny(t *testing.T) {
	ivs := []stree.Interval{iv(10, 50), iv(20, 30)}
	pts := []uint64{5, 25, 31, 60}
	got := AfterAny(pts, ivs) // min end = 30; points after 30
	want := []int{2, 3}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("got %v, want %v", got, want)
	}
	if AfterAny(pts, nil) != nil {
		t.Error("no intervals → no matches")
	}
}

// randomTreeIntervals builds a random set of properly nested intervals by
// simulating a token walk.
func randomTreeIntervals(rng *rand.Rand, n int) []stree.Interval {
	var out []stree.Interval
	var pos uint64 = 1
	var build func(depth int)
	build = func(depth int) {
		if len(out) >= n {
			return
		}
		start := pos
		pos++
		out = append(out, stree.Interval{Start: start})
		idx := len(out) - 1
		kids := rng.Intn(3)
		if depth < 6 {
			for i := 0; i < kids; i++ {
				build(depth + 1)
			}
		}
		out[idx].End = pos
		pos++
	}
	for len(out) < n {
		build(0)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

func TestStackJoinAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		all := randomTreeIntervals(rng, 60)
		// Random subsets as ancestor/descendant lists.
		var anc, desc []stree.Interval
		for _, v := range all {
			if rng.Intn(2) == 0 {
				anc = append(anc, v)
			}
			if rng.Intn(2) == 0 {
				desc = append(desc, v)
			}
		}
		got := StackJoin(anc, desc)
		type pair struct{ a, d int }
		gotSet := map[pair]bool{}
		for _, p := range got {
			gotSet[pair{p.Anc, p.Desc}] = true
		}
		n := 0
		for ai, a := range anc {
			for di, d := range desc {
				if a.Contains(d) {
					n++
					if !gotSet[pair{ai, di}] {
						t.Fatalf("missing pair (%v, %v)", a, d)
					}
				}
			}
		}
		if n != len(got) {
			t.Fatalf("StackJoin produced %d pairs, naive %d", len(got), n)
		}
	}
}

func TestSemiJoins(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		all := randomTreeIntervals(rng, 50)
		var anc, desc []stree.Interval
		for _, v := range all {
			if rng.Intn(2) == 0 {
				anc = append(anc, v)
			} else {
				desc = append(desc, v)
			}
		}
		gotD := SemiJoinDesc(anc, desc)
		gotA := SemiJoinAnc(anc, desc)
		dSet := map[int]bool{}
		for _, i := range gotD {
			dSet[i] = true
		}
		aSet := map[int]bool{}
		for _, i := range gotA {
			aSet[i] = true
		}
		for di, d := range desc {
			want := false
			for _, a := range anc {
				if a.Contains(d) {
					want = true
				}
			}
			if dSet[di] != want {
				t.Fatalf("SemiJoinDesc wrong for desc %d", di)
			}
		}
		for ai, a := range anc {
			want := false
			for _, d := range desc {
				if a.Contains(d) {
					want = true
				}
			}
			if aSet[ai] != want {
				t.Fatalf("SemiJoinAnc wrong for anc %d", ai)
			}
		}
	}
}
