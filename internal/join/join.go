// Package join implements structural joins over interval encodings (§5):
// the primitives that recombine NoK partial matches across global axes,
// plus the stack-based structural join [Al-Khalifa et al., ICDE 2002] used
// by the DI baseline.
//
// All functions work on stree.Interval values: (start, end) positions of a
// node's open token and matching close, which satisfy the containment
// condition a ⊃ b ⇔ a.Start < b.Start ∧ b.End < a.End.
package join

import (
	"sort"

	"nok/internal/obs"
	"nok/internal/stree"
)

// Process-wide structural-join counters, exposed through the default obs
// registry. Probes are the per-node existence tests installed as link
// predicates; joins are the list-level recombinations.
var (
	mProbes     = obs.Default.Counter("nok_join_probes_total", "per-node existence probes (ExistsWithin/ExistsAfter)")
	mJoins      = obs.Default.Counter("nok_join_ops_total", "list-level structural joins (ContainedIn/AfterAny/StackJoin)")
	mJoinInputs = obs.Default.Counter("nok_join_input_items_total", "points and intervals fed into list-level structural joins")
	mJoinOutput = obs.Default.Counter("nok_join_output_items_total", "items surviving list-level structural joins")
)

// ExistsWithin reports whether any of the sorted points lies strictly
// inside iv — the descendant-existence test the NoK evaluator installs as
// a link predicate during its bottom-up pass.
func ExistsWithin(points []uint64, iv stree.Interval) bool {
	mProbes.Inc()
	i := sort.Search(len(points), func(i int) bool { return points[i] > iv.Start })
	return i < len(points) && points[i] < iv.End
}

// ExistsAfter reports whether any of the sorted points lies after the
// interval's end — the following-axis existence test.
func ExistsAfter(points []uint64, iv stree.Interval) bool {
	mProbes.Inc()
	return len(points) > 0 && points[len(points)-1] > iv.End
}

// ContainedIn returns the indexes (ascending) of points that lie strictly
// inside at least one interval. Both inputs must be sorted (points
// ascending, intervals by Start). Because element intervals nest or are
// disjoint, a point is covered iff some already-started interval has an
// end beyond it, so one sweep with a running maximum suffices.
func ContainedIn(points []uint64, ivs []stree.Interval) []int {
	mJoins.Inc()
	mJoinInputs.Add(int64(len(points) + len(ivs)))
	var out []int
	var maxEnd uint64
	j := 0
	for i, p := range points {
		for j < len(ivs) && ivs[j].Start < p {
			if ivs[j].End > maxEnd {
				maxEnd = ivs[j].End
			}
			j++
		}
		if maxEnd > p {
			out = append(out, i)
		}
	}
	mJoinOutput.Add(int64(len(out)))
	return out
}

// AfterAny returns the indexes (ascending) of points that lie after the
// end of at least one interval — i.e. after the earliest interval end.
func AfterAny(points []uint64, ivs []stree.Interval) []int {
	mJoins.Inc()
	mJoinInputs.Add(int64(len(points) + len(ivs)))
	if len(ivs) == 0 {
		return nil
	}
	minEnd := ivs[0].End
	for _, iv := range ivs[1:] {
		if iv.End < minEnd {
			minEnd = iv.End
		}
	}
	var out []int
	for i, p := range points {
		if p > minEnd {
			out = append(out, i)
		}
	}
	mJoinOutput.Add(int64(len(out)))
	return out
}

// Pair is one ancestor/descendant join result, as indexes into the input
// slices.
type Pair struct {
	Anc, Desc int
}

// StackJoin computes all (ancestor, descendant) pairs between two
// interval lists sorted by Start — the stack-based structural join. It
// runs in O(|anc| + |desc| + |output|).
func StackJoin(anc, desc []stree.Interval) []Pair {
	mJoins.Inc()
	mJoinInputs.Add(int64(len(anc) + len(desc)))
	var out []Pair
	var stack []int // indexes into anc, nested intervals
	ai, di := 0, 0
	for di < len(desc) {
		d := desc[di]
		// Push every ancestor starting before d.
		for ai < len(anc) && anc[ai].Start < d.Start {
			// Pop ancestors that end before this one starts (no longer
			// enclosing anything upcoming).
			for len(stack) > 0 && anc[stack[len(stack)-1]].End < anc[ai].Start {
				stack = stack[:len(stack)-1]
			}
			stack = append(stack, ai)
			ai++
		}
		// Pop ancestors that ended before d starts.
		for len(stack) > 0 && anc[stack[len(stack)-1]].End < d.Start {
			stack = stack[:len(stack)-1]
		}
		// Every ancestor remaining on the stack with End > d.End contains d.
		for _, s := range stack {
			if d.End < anc[s].End {
				out = append(out, Pair{Anc: s, Desc: di})
			}
		}
		di++
	}
	mJoinOutput.Add(int64(len(out)))
	return out
}

// SemiJoinDesc returns the indexes of descendants contained in at least
// one ancestor (a structural semijoin, the common case in path steps).
func SemiJoinDesc(anc, desc []stree.Interval) []int {
	points := make([]uint64, len(desc))
	for i, d := range desc {
		points[i] = d.Start
	}
	return ContainedIn(points, anc)
}

// SemiJoinAnc returns the indexes (ascending) of ancestors that contain at
// least one descendant.
func SemiJoinAnc(anc, desc []stree.Interval) []int {
	points := make([]uint64, len(desc))
	for i, d := range desc {
		points[i] = d.Start
	}
	sort.Slice(points, func(i, j int) bool { return points[i] < points[j] })
	var out []int
	for i, a := range anc {
		if ExistsWithin(points, a) {
			out = append(out, i)
		}
	}
	return out
}
