// Package vfs abstracts the file-system operations used by the storage
// stack (pager, vstore, symtab, di, and the core commit protocol) behind a
// small interface, so tests can interpose fault injection (internal/faultfs)
// between the storage code and the OS.
//
// The interface is deliberately minimal: positional I/O only (ReadAt /
// WriteAt), explicit durability points (Sync, SyncDir), and the handful of
// namespace operations the commit protocol needs (Rename, Remove, Truncate,
// ReadDir). Anything not needed by a storage component is left out.
package vfs

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// File is an open file handle. All storage-layer I/O is positional; there
// is no seek state to share or corrupt.
type File interface {
	io.ReaderAt
	io.WriterAt
	io.Closer
	// Sync flushes the file's data (and metadata) to stable storage.
	Sync() error
	// Truncate changes the file's size.
	Truncate(size int64) error
	// Stat returns file metadata (used for sizes).
	Stat() (os.FileInfo, error)
}

// FS is the namespace interface: open, remove, rename, and the directory
// operations the atomic-commit protocol relies on.
type FS interface {
	// OpenFile opens name with the given flags (os.O_*) and permissions.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Remove(name string) error
	Rename(oldpath, newpath string) error
	Stat(name string) (os.FileInfo, error)
	Truncate(name string, size int64) error
	ReadDir(name string) ([]fs.DirEntry, error)
	MkdirAll(name string, perm os.FileMode) error
	// SyncDir fsyncs a directory, making preceding renames/removes/creates
	// inside it durable. Implementations for which this is meaningless may
	// make it a no-op.
	SyncDir(name string) error
}

// OS is the passthrough implementation backed by the real file system.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) Stat(name string) (os.FileInfo, error)      { return os.Stat(name) }
func (osFS) Truncate(name string, size int64) error     { return os.Truncate(name, size) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (osFS) MkdirAll(name string, perm os.FileMode) error {
	return os.MkdirAll(name, perm)
}

func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	// Directory fsync is not supported on every platform; a failed sync of
	// an otherwise healthy directory handle is reported, a failed open is.
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// ---- helpers ----------------------------------------------------------------

// ReadFile reads the whole file at path through fsys.
func ReadFile(fsys FS, path string) ([]byte, error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, fi.Size())
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, fi.Size()), buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// WriteFileAtomic writes data to path via a temporary file in the same
// directory: write, fsync, rename, fsync directory. A crash at any point
// leaves either the old file or the new one, never a mixture.
func WriteFileAtomic(fsys FS, path string, data []byte, perm os.FileMode) error {
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}
