GO ?= go

.PHONY: check build vet test race fmt bench

# check is the full gate: formatting, vet, build, and the race-enabled
# test suite. CI and pre-commit both run `make check`.
check: fmt vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fmt fails (listing the offenders) if any file is not gofmt-clean.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench:
	$(GO) test -bench . -benchtime 1x ./...
