GO ?= go

.PHONY: check build vet staticcheck test race fmt bench

# check is the full gate: formatting, vet, staticcheck (when installed),
# build, and the race-enabled test suite. CI and pre-commit both run
# `make check`.
check: fmt vet staticcheck build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# staticcheck runs when the binary is on PATH (CI installs it; locally:
# go install honnef.co/go/tools/cmd/staticcheck@latest) and is skipped
# with a notice otherwise, so `make check` works on a bare toolchain.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fmt fails (listing the offenders) if any file is not gofmt-clean.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench:
	$(GO) test -bench . -benchtime 1x ./...
