package nok

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"nok/internal/samples"
)

// TestCloseDrainsInflightQueries is the -race regression test for
// Store.Close racing the pager: Close must block until every in-flight
// query (including its parallel partition workers) finishes, and queries
// issued after Close must fail with ErrClosed instead of touching released
// pages. Run with -race this catches any evaluation goroutine outliving
// the store.
func TestCloseDrainsInflightQueries(t *testing.T) {
	st := bigStore(t, 3000)

	const queriers = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < queriers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for {
				// Force a scan so each query spans many pages while Close
				// contends for the write lock.
				_, _, err := st.QueryWithOptions(`//book[price<100]`, &QueryOptions{Strategy: StrategyScan})
				if err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("in-flight query failed with %v, want success or ErrClosed", err)
					}
					return
				}
			}
		}()
	}
	close(start)
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()

	if _, err := st.Query(`//book`); !errors.Is(err, ErrClosed) {
		t.Fatalf("Query after Close: err = %v, want ErrClosed", err)
	}
	if err := st.Insert("0", strings.NewReader("<book/>")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Insert after Close: err = %v, want ErrClosed", err)
	}
	if err := st.Delete("0.1"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Delete after Close: err = %v, want ErrClosed", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestProvablyEmpty(t *testing.T) {
	st := newStore(t)
	empty, reason, err := st.ProvablyEmpty(`//journal`)
	if err != nil {
		t.Fatal(err)
	}
	if !empty || !strings.Contains(reason, "journal") {
		t.Fatalf("ProvablyEmpty(//journal) = %v %q, want pruned on absent tag", empty, reason)
	}
	empty, _, err = st.ProvablyEmpty(samples.PaperQuery)
	if err != nil {
		t.Fatal(err)
	}
	if empty {
		t.Fatalf("ProvablyEmpty(%s) = true for a query with results", samples.PaperQuery)
	}
	if empty, reason, _ := st.ProvablyEmpty(`//author[last="Nobody"]`); !empty || !strings.Contains(reason, "Nobody") {
		t.Fatalf("absent string literal not pruned: %v %q", empty, reason)
	}
	// Numeric equality literals must never prune via the value sketch:
	// "100" would have to match a stored "100.0".
	if empty, reason, _ := st.ProvablyEmpty(`//book[price=12345]`); empty {
		t.Fatalf("numeric literal pruned unsoundly: %q", reason)
	}
}
