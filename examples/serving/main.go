// Serving: run the nokserve query service in-process over the paper's
// bibliography, fire concurrent clients at it — some sharing hot
// expressions (cache hits), some unique (misses) — mutate the store
// mid-flight to demonstrate cache invalidation, then shut down gracefully.
//
// In production you would run the standalone binary instead:
//
//	nokserve -db bib.db -addr :8080
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"nok"
	"nok/internal/samples"
	"nok/internal/server"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "nok-serving")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	store, err := nok.Create(dir+"/bib.db", strings.NewReader(samples.Bibliography), nil)
	if err != nil {
		log.Fatal(err)
	}

	// The server owns the store from here on; Shutdown closes it.
	srv := server.New(store, server.Config{Workers: 4, QueueDepth: 64})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Println("serving on", base)

	// 16 concurrent clients, 4 queries each, over two shared expressions:
	// the first evaluation of each misses, everything after hits the cache.
	queries := []string{
		`/bib/book/title`,
		`//book[author/last="Stevens"]`,
	}
	var wg sync.WaitGroup
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				q := queries[(c+i)%len(queries)]
				resp, err := http.Get(base + "/query?q=" + strings.ReplaceAll(q, " ", "%20"))
				if err != nil {
					log.Printf("client %d: %v", c, err)
					return
				}
				var out struct {
					Count  int  `json:"count"`
					Cached bool `json:"cached"`
				}
				json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if c == 0 && i < len(queries) {
					fmt.Printf("client 0: %-32q -> %d results (cached=%v)\n", q, out.Count, out.Cached)
				}
			}
		}(c)
	}
	wg.Wait()
	fmt.Printf("cache hit ratio after concurrent run: %.2f\n", srv.CacheHitRatio())

	// A mutation bumps the store generation: the next query misses the
	// cache and sees the new book immediately.
	err = store.Insert("0", strings.NewReader(
		`<book year="2004"><title>Succinct XML Storage</title><price>10</price></book>`))
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Get(base + "/query?q=" + queries[0])
	if err != nil {
		log.Fatal(err)
	}
	var out struct {
		Count  int  `json:"count"`
		Cached bool `json:"cached"`
	}
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	fmt.Printf("after insert: %d titles (cached=%v — invalidated by generation bump)\n", out.Count, out.Cached)

	// Graceful shutdown: stop the listener, drain in-flight queries, close
	// the store.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained and closed")
}
