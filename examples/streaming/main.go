// Streaming: evaluate path queries over an XML stream in a single pass
// with bounded memory — no store on disk. The paper observes (§4.2) that
// the succinct string representation is exactly the SAX event stream, so
// NoK matching applies to live feeds unchanged.
//
// This example generates a dblp-like publication feed in one goroutine and
// matches it in another through an io.Pipe: nothing is ever materialized.
package main

import (
	"fmt"
	"io"
	"log"

	"nok"
	"nok/internal/datagen"
)

func main() {
	log.SetFlags(0)
	pr, pw := io.Pipe()

	// Producer: a publication feed of ~36k elements.
	go func() {
		spec, _ := datagen.SpecByName("dblp")
		err := spec.Generate(pw, 1, 42)
		pw.CloseWithError(err)
	}()

	// Consumer: find the first five VLDB Journal articles as they fly by,
	// then stop — the producer is cut off mid-stream.
	query := `/dblp/article[journal="VLDB Journal"]/title`
	fmt.Println("query:", query)
	n := 0
	err := nok.Stream(pr, query, func(r nok.Result) bool {
		n++
		fmt.Printf("  %-14s %s\n", r.ID, r.Value)
		return n < 5
	})
	if err != nil {
		log.Fatal(err)
	}
	pr.Close()
	fmt.Printf("stopped after %d matches without buffering the document\n", n)
}
