// Updates: maintain a bibliography incrementally — insert new books,
// delete one, and watch queries track the changes. Demonstrates the
// update path of §4.2: subtree insertion into the succinct string
// representation plus index reconstruction.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"nok"
	"nok/internal/samples"
)

func count(store *nok.Store, q string) int {
	rs, err := store.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	return len(rs)
}

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "nok-updates")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	store, err := nok.Create(dir+"/bib.db", strings.NewReader(samples.Bibliography), nil)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	fmt.Printf("books initially: %d\n", count(store, `/bib/book`))

	// Insert two new books as children of the root (Dewey ID "0").
	for _, frag := range []string{
		`<book year="2003"><title>Holistic Twig Joins in Practice</title>
		   <author><last>Koudas</last><first>N.</first></author>
		   <publisher>SIGMOD</publisher><price>42.00</price></book>`,
		`<book year="2004"><title>NoK Pattern Matching</title>
		   <author><last>Zhang</last><first>Ning</first></author>
		   <publisher>ICDE</publisher><price>10.00</price></book>`,
	} {
		if err := store.Insert("0", strings.NewReader(frag)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("books after inserts: %d\n", count(store, `/bib/book`))
	fmt.Printf("cheap books (<50): %d\n", count(store, `//book[price<50]`))

	// The new content is fully indexed: value queries find it.
	rs, err := store.Query(`//book[author/last="Zhang"]`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Zhang's book ID: %s\n", rs[0].ID)

	// Delete the most expensive book (Economics of Technology, 129.95).
	exp, err := store.Query(`//book[price>100]`)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range exp {
		fmt.Printf("deleting book %s\n", r.ID)
		if err := store.Delete(r.ID); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("books after delete: %d (siblings renumbered)\n", count(store, `/bib/book`))
}
