// Sharding: split one collection across four independent stores, watch a
// tag-selective query prune three of them via per-shard statistics, merge
// scatter-gather results back into global document order, and see why the
// per-shard result cache survives writes to other shards.
//
// On the command line the same flow is:
//
//	nokload -db coll -xml corpus.xml -shards 4 -routing path
//	nokquery -db coll -analyze '//article/pages'
//	nokserve -db coll        # serves the sharded collection transparently
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"nok/internal/shard"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "nok-sharding")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A small mixed collection: books, articles, theses. Path routing
	// deals each top-level element name onto its own shard.
	var xml strings.Builder
	xml.WriteString(`<bib curator="kim">`)
	for i := 0; i < 12; i++ {
		fmt.Fprintf(&xml, "<book><title>b%d</title><price>%d</price></book>", i, 20+i)
		fmt.Fprintf(&xml, "<article><title>a%d</title><pages>%d</pages></article>", i, 5+i)
		fmt.Fprintf(&xml, "<thesis><title>t%d</title><year>%d</year></thesis>", i, 2010+i)
	}
	xml.WriteString("</bib>")

	st, err := shard.Create(dir+"/coll", strings.NewReader(xml.String()),
		&shard.Options{Shards: 4, Strategy: shard.StrategyPath})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	man := st.Manifest()
	fmt.Printf("collection split across %d shards (%s routing):\n", man.Shards, man.Strategy)
	for s, assign := range man.Assign {
		fmt.Printf("  shard %d: %d document(s)\n", s, len(assign))
	}

	// A tag-selective query: every shard that provably holds no <article>
	// is pruned by its statistics before any page is read. Results come
	// back in global document order with globally valid Dewey IDs.
	rs, stats, err := st.QueryWithOptions(`//article[pages<8]/title`, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n//article[pages<8]/title -> %d result(s)\n", len(rs))
	for _, r := range rs {
		fmt.Printf("  %-8s %q\n", r.ID, r.Value)
	}
	for _, sh := range stats.Shards {
		if sh.Skipped {
			fmt.Printf("  shard %d pruned: %s\n", sh.Shard, sh.SkipReason)
		} else {
			fmt.Printf("  shard %d answered in %v\n", sh.Shard, sh.Duration)
		}
	}

	// The same pruning drives per-shard cache invalidation: the fingerprint
	// names only the shards that participate, so a write to the book shard
	// leaves every cached article query's fingerprint — and entry — intact.
	before := st.CacheFingerprint(`//article[pages<8]/title`)
	if err := st.Insert("0", strings.NewReader("<book><title>new</title><price>9</price></book>")); err != nil {
		log.Fatal(err)
	}
	after := st.CacheFingerprint(`//article[pages<8]/title`)
	fmt.Printf("\nfingerprint before book insert: %s\n", before)
	fmt.Printf("fingerprint after  book insert: %s (unchanged: %v)\n", after, before == after)

	// Queries that could need a witness spanning documents on different
	// shards are refused rather than answered wrong.
	if _, err := st.Query(`//book/following::article`); err != nil {
		fmt.Printf("\ncross-document query refused: %v\n", err)
	}

	// The collection verifies as a whole: manifest consistency plus a deep
	// check of every member store.
	if res := st.Verify(true); res.OK() {
		fmt.Println("\nverify: ok")
	} else {
		fmt.Printf("\nverify: %d issue(s)\n", len(res.Issues))
	}
}
