// Quickstart: build a store from the paper's running example (the
// bibliography of Figure 1(a)) and evaluate Example 1's query
// //book[author/last="Stevens"][price<100].
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"nok"
	"nok/internal/samples"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "nok-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Load the XML document; any io.Reader works.
	store, err := nok.Create(dir+"/bib.db", strings.NewReader(samples.Bibliography), nil)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	fmt.Println("query:", samples.PaperQuery)
	results, err := store.Query(samples.PaperQuery)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		// Fetch each matched book's title through its Dewey ID: the
		// title is the second child of a book.
		title, _, err := store.Value(r.ID + ".2")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  book %s: %s\n", r.ID, title)
	}

	// Explain shows the pattern tree and NoK partitioning.
	plan, err := nok.Explain(samples.PaperQuery)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nplan:")
	fmt.Print(plan)
}
