// Comparison: run the same queries through all four engines of the
// paper's evaluation — DI (interval merge joins), the navigational
// baseline, TwigStack (holistic twig join) and NoK — on one generated
// document, printing times and result counts side by side. A miniature,
// interactive Table 3.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"nok/internal/datagen"
	"nok/internal/di"
	"nok/internal/domnav"
	"nok/internal/pattern"
	"nok/internal/twigstack"

	"nok"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "nok-compare")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// One dblp-like document, four engines.
	xmlPath := dir + "/dblp.xml"
	spec, _ := datagen.SpecByName("dblp")
	if err := datagen.GenerateFile(spec, xmlPath, 1, 42); err != nil {
		log.Fatal(err)
	}

	nokStore, err := nok.CreateFromFile(dir+"/nok.db", xmlPath, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer nokStore.Close()

	f, _ := os.Open(xmlPath)
	diEng, err := di.Load(dir+"/di", f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	defer diEng.Close()

	f, _ = os.Open(xmlPath)
	twig, err := twigstack.Load(dir+"/twig", f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	defer twig.Close()

	f, _ = os.Open(xmlPath)
	dom, err := domnav.Parse(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	queries := []string{
		`/dblp/article[author="` + datagen.NeedleHigh + `"]`,
		`//article[author="` + datagen.NeedleMod + `"]/title`,
		`//article[title][year]`,
		`/dblp/article/title`,
	}
	fmt.Printf("%-55s %10s %10s %10s %10s\n", "query", "DI", "Nav", "TwigStack", "NoK")
	for _, q := range queries {
		row := fmt.Sprintf("%-55.55s", q)
		var counts []int

		t0 := time.Now()
		rs1, err := diEng.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		row += fmt.Sprintf(" %9.2fms", ms(time.Since(t0)))
		counts = append(counts, len(rs1))

		tr := pattern.MustParse(q)
		t0 = time.Now()
		rs2 := domnav.Evaluate(dom, tr)
		row += fmt.Sprintf(" %9.2fms", ms(time.Since(t0)))
		counts = append(counts, len(rs2))

		t0 = time.Now()
		rs3, err := twig.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		row += fmt.Sprintf(" %9.2fms", ms(time.Since(t0)))
		counts = append(counts, len(rs3))

		t0 = time.Now()
		rs4, err := nokStore.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		row += fmt.Sprintf(" %9.2fms", ms(time.Since(t0)))
		counts = append(counts, len(rs4))

		for _, c := range counts[1:] {
			if c != counts[0] {
				log.Fatalf("engines disagree on %q: %v", q, counts)
			}
		}
		fmt.Printf("%s   (%d results)\n", row, counts[0])
	}
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
