// Catalog search: a product-catalog scenario on the deep XBench-style
// dataset. Shows how the §6.2 starting-point strategies behave on the
// same query: scan, tag index, value index, and the automatic heuristic.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"nok"
	"nok/internal/datagen"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "nok-catalog")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Generate and load the catalog dataset (≈30k nodes at scale 1).
	xmlPath := dir + "/catalog.xml"
	spec, _ := datagen.SpecByName("catalog")
	if err := datagen.GenerateFile(spec, xmlPath, 1, 7); err != nil {
		log.Fatal(err)
	}
	store, err := nok.CreateFromFile(dir+"/catalog.db", xmlPath, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	st := store.Stats()
	fmt.Printf("catalog: %d nodes in %d pages, max depth %d\n\n", st.Nodes, st.Pages, st.MaxDepth)

	// A selective lookup: books by one publisher with a review.
	query := `/catalog/category/item[publisher="Kluwer Academic"][reviews]/title`
	fmt.Println("query:", query)
	for _, s := range []struct {
		name  string
		strat nok.Strategy
	}{
		{"scan", nok.StrategyScan},
		{"tag-index", nok.StrategyTagIndex},
		{"value-index", nok.StrategyValueIndex},
		{"auto", nok.StrategyAuto},
	} {
		t0 := time.Now()
		rs, stats, err := store.QueryWithOptions(query, &nok.QueryOptions{Strategy: s.strat})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %4d results in %8v (starts=%d, nodes visited=%d)\n",
			s.name, len(rs), time.Since(t0).Round(time.Microsecond),
			stats.StartingPoints, stats.NodesVisited)
	}

	// Deep path with a wildcard step.
	fmt.Println("\nquery: //item/attributes/size_of_book/height")
	rs, err := store.Query(`//item/attributes/size_of_book/height`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d heights; first: %s = %q\n", len(rs), rs[0].ID, rs[0].Value)
}
