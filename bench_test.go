// Benchmarks regenerating the paper's evaluation (one benchmark per table,
// figure, or quantified claim — see DESIGN.md §4 for the index):
//
//	BenchmarkTable3           Table 3 cells: dataset/Qn/system
//	BenchmarkTable1Load       Table 1: bulk-load cost per dataset
//	BenchmarkStorageRatio     §4.2: string representation ≪ document
//	BenchmarkSinglePass       Proposition 1: pages read ≤ pages stored
//	BenchmarkStartingPoints   §6.2: scan vs tag index vs value index
//	BenchmarkPlannerPages     cost-based planner vs §6.2 heuristic pages
//	BenchmarkHeaderSkip       (st,lo,hi) page-skip ablation
//	BenchmarkInsertSubtree    §4.2: update locality
//	BenchmarkNoKComplexity    §3: O(m·n) with frontier revisits
//	BenchmarkStreaming        §4.2: SAX-stream evaluation
//	BenchmarkJoinReduction    §1: NoK partitioning shrinks join work
//
// The harness caches generated datasets and loaded stores under the
// system temp directory, so repeated -bench runs skip the load phase.
//
// By default the per-dataset benchmarks run on one bushy and one deep
// dataset to keep `go test -bench .` to minutes; set
// NOK_BENCH_DATASETS=all (or a comma-separated list) for the full matrix,
// or use cmd/nokbench, which always regenerates the complete tables.
package nok

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"nok/internal/bench"
	"nok/internal/core"
	"nok/internal/datagen"
	"nok/internal/domnav"
	"nok/internal/pattern"
	"nok/internal/stream"
	"nok/internal/stree"
	"nok/internal/workload"
)

var benchCfg = bench.Config{
	WorkDir: filepath.Join(os.TempDir(), "nok-bench-cache"),
	Scale:   1,
	Runs:    1,
}.WithDefaults()

// benchDatasets selects which datasets the per-dataset benchmarks cover.
var benchDatasets = func() []string {
	switch v := os.Getenv("NOK_BENCH_DATASETS"); v {
	case "":
		return []string{"author", "treebank"}
	case "all":
		return benchCfg.Datasets
	default:
		return strings.Split(v, ",")
	}
}()

var (
	envMu sync.Mutex
	envs  = map[string]*bench.Env{}
)

// env returns the cached environment for a dataset.
func env(b *testing.B, name string) *bench.Env {
	b.Helper()
	envMu.Lock()
	defer envMu.Unlock()
	if e, ok := envs[name]; ok {
		return e
	}
	e, err := bench.Prepare(benchCfg, name)
	if err != nil {
		b.Fatal(err)
	}
	envs[name] = e
	return e
}

// BenchmarkTable3 regenerates Table 3: every (dataset, category, system)
// cell as a sub-benchmark. Filter with, e.g.:
//
//	go test -bench 'Table3/dblp/Q1/'
func BenchmarkTable3(b *testing.B) {
	for _, name := range benchDatasets {
		b.Run(name, func(b *testing.B) {
			e := env(b, name)
			queries, err := workload.ForDataset(name)
			if err != nil {
				b.Fatal(err)
			}
			for _, q := range queries {
				if q.NA() {
					continue
				}
				expr := q.Expr
				b.Run(q.Category.ID, func(b *testing.B) {
					b.Run("DI", func(b *testing.B) {
						if _, err := e.DI.Query(expr); err != nil {
							b.Skipf("NI: %v", err)
						}
						b.ResetTimer()
						for i := 0; i < b.N; i++ {
							if _, err := e.DI.Query(expr); err != nil {
								b.Fatal(err)
							}
						}
					})
					b.Run("Nav", func(b *testing.B) {
						tr := pattern.MustParse(expr)
						for i := 0; i < b.N; i++ {
							domnav.Evaluate(e.Dom, tr)
						}
					})
					b.Run("TwigStack", func(b *testing.B) {
						for i := 0; i < b.N; i++ {
							if _, err := e.Twig.Query(expr); err != nil {
								b.Fatal(err)
							}
						}
					})
					b.Run("NoK", func(b *testing.B) {
						for i := 0; i < b.N; i++ {
							if _, _, err := e.NoK.Query(expr, nil); err != nil {
								b.Fatal(err)
							}
						}
					})
				})
			}
		})
	}
}

// BenchmarkTable1Load measures bulk loading (the cost behind Table 1's
// |tree| and index columns).
func BenchmarkTable1Load(b *testing.B) {
	for _, name := range []string{"author", "catalog"} {
		b.Run(name, func(b *testing.B) {
			e := env(b, name)
			xml := e.XMLPath
			b.SetBytes(e.Stats.Bytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dir := filepath.Join(b.TempDir(), fmt.Sprintf("load%d", i))
				db, err := core.LoadXMLFile(dir, xml, nil)
				if err != nil {
					b.Fatal(err)
				}
				db.Close()
			}
		})
	}
}

// BenchmarkStorageRatio reports the §4.2 document/tree size ratio.
func BenchmarkStorageRatio(b *testing.B) {
	for _, name := range benchDatasets {
		b.Run(name, func(b *testing.B) {
			e := env(b, name)
			ratio := float64(e.Stats.Bytes) / float64(e.NoK.Tree.TokenBytes())
			for i := 0; i < b.N; i++ {
				_ = e.NoK.Tree.TokenBytes()
			}
			b.ReportMetric(ratio, "doc/tree")
			b.ReportMetric(float64(e.NoK.Tree.HeaderBytes()), "hdr-bytes")
		})
	}
}

// BenchmarkSinglePass verifies Proposition 1 while measuring: tree-file
// physical reads during a scan-strategy query never exceed the page count.
func BenchmarkSinglePass(b *testing.B) {
	for _, name := range benchDatasets {
		b.Run(name, func(b *testing.B) {
			e := env(b, name)
			queries, _ := workload.ForDataset(name)
			expr := queries[11].Expr
			pf := e.NoK.Tree.Pager()
			var reads, hits int64
			for i := 0; i < b.N; i++ {
				pf.ResetStats()
				if _, _, err := e.NoK.Query(expr, &core.QueryOptions{Strategy: core.StrategyScan}); err != nil {
					b.Fatal(err)
				}
				ps := pf.Stats()
				reads, hits = ps.PhysicalReads, ps.CacheHits
			}
			pages := int64(e.NoK.Tree.NumPages())
			if reads > pages {
				b.Fatalf("Proposition 1 violated: %d reads > %d pages", reads, pages)
			}
			b.ReportMetric(float64(reads), "phys-reads")
			b.ReportMetric(float64(pages), "pages")
			if total := hits + reads; total > 0 {
				b.ReportMetric(float64(hits)/float64(total), "cache-hit-ratio")
			}
		})
	}
}

// BenchmarkStartingPoints compares the §6.2 strategies on the Q1 query.
func BenchmarkStartingPoints(b *testing.B) {
	strategies := []struct {
		name  string
		strat core.Strategy
	}{
		{"scan", core.StrategyScan},
		{"tag", core.StrategyTagIndex},
		{"value", core.StrategyValueIndex},
		{"path", core.StrategyPathIndex},
		{"auto", core.StrategyAuto},
	}
	for _, name := range benchDatasets {
		b.Run(name, func(b *testing.B) {
			e := env(b, name)
			queries, _ := workload.ForDataset(name)
			expr := queries[0].Expr
			for _, s := range strategies {
				b.Run(s.name, func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if _, _, err := e.NoK.Query(expr, &core.QueryOptions{Strategy: s.strat}); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		})
	}
}

// BenchmarkPlannerPages compares pages scanned with the cost-based planner
// on (StrategyAuto consulting the synopsis) vs off (§6.2 heuristic): the
// trap documents are adversarial for the heuristic, the workload queries
// guard against planner-introduced regressions.
func BenchmarkPlannerPages(b *testing.B) {
	type target struct {
		name string
		db   *core.DB
		expr string
	}
	var targets []target

	for _, trap := range []struct{ name, expr string }{
		{"trap-value", `//rare[common="dup"]`},
		{"trap-path", `/lib/special/book[title="T"]`},
	} {
		var sb strings.Builder
		if trap.name == "trap-value" {
			sb.WriteString("<root>")
			for i := 0; i < 2000; i++ {
				sb.WriteString("<item><common>dup</common></item>")
			}
			sb.WriteString("<rare><common>dup</common></rare><rare><common>dup</common></rare></root>")
		} else {
			sb.WriteString("<lib><shelf>")
			for i := 0; i < 2000; i++ {
				sb.WriteString("<book><title>T</title></book>")
			}
			sb.WriteString("</shelf><special><book><title>T</title></book><book><title>T</title></book></special></lib>")
		}
		dir := b.TempDir()
		xmlPath := filepath.Join(dir, "trap.xml")
		if err := os.WriteFile(xmlPath, []byte(sb.String()), 0o644); err != nil {
			b.Fatal(err)
		}
		db, err := core.LoadXMLFile(filepath.Join(dir, "db"), xmlPath, &core.Options{PageSize: 256})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { db.Close() })
		targets = append(targets, target{trap.name, db, trap.expr})
	}
	for _, name := range benchDatasets {
		e := env(b, name)
		queries, _ := workload.ForDataset(name)
		targets = append(targets, target{name, e.NoK, queries[0].Expr})
	}

	for _, tg := range targets {
		b.Run(tg.name, func(b *testing.B) {
			for _, mode := range []struct {
				name string
				opts *core.QueryOptions
			}{
				{"planner", nil},
				{"heuristic", &core.QueryOptions{DisablePlanner: true}},
			} {
				b.Run(mode.name, func(b *testing.B) {
					var pages float64
					for i := 0; i < b.N; i++ {
						_, stats, err := tg.db.Query(tg.expr, mode.opts)
						if err != nil {
							b.Fatal(err)
						}
						pages = float64(stats.PagesScanned)
					}
					b.ReportMetric(pages, "pages-scanned/op")
				})
			}
		})
	}
}

// BenchmarkHeaderSkip is the (st,lo,hi) ablation on the deep datasets.
func BenchmarkHeaderSkip(b *testing.B) {
	for _, name := range []string{"catalog", "treebank"} {
		b.Run(name, func(b *testing.B) {
			e := env(b, name)
			queries, _ := workload.ForDataset(name)
			expr := queries[11].Expr
			for _, mode := range []struct {
				name string
				off  bool
			}{{"skip", false}, {"noskip", true}} {
				b.Run(mode.name, func(b *testing.B) {
					var scanned, skipped float64
					pf := e.NoK.Tree.Pager()
					pf.ResetStats()
					for i := 0; i < b.N; i++ {
						opts := &core.QueryOptions{Strategy: core.StrategyScan, DisablePageSkip: mode.off}
						_, stats, err := e.NoK.Query(expr, opts)
						if err != nil {
							b.Fatal(err)
						}
						scanned = float64(stats.PagesScanned)
						skipped = float64(stats.PagesSkipped)
					}
					b.ReportMetric(scanned, "pages-scanned/op")
					b.ReportMetric(skipped, "pages-skipped/op")
					ps := pf.Stats()
					if total := ps.CacheHits + ps.PhysicalReads; total > 0 {
						b.ReportMetric(float64(ps.CacheHits)/float64(total), "cache-hit-ratio")
					}
				})
			}
		})
	}
}

// BenchmarkInsertSubtree measures §4.2 update locality: a small subtree
// insertion into a fresh store.
func BenchmarkInsertSubtree(b *testing.B) {
	dir := b.TempDir()
	spec, _ := datagen.SpecByName("author")
	xmlPath := filepath.Join(dir, "a.xml")
	if err := datagen.GenerateFile(spec, xmlPath, 1, 7); err != nil {
		b.Fatal(err)
	}
	db, err := core.LoadXMLFile(filepath.Join(dir, "db"), xmlPath, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	root, err := db.Tree.Root()
	if err != nil {
		b.Fatal(err)
	}
	sym, err := db.Tags.Intern("benchtag")
	if err != nil {
		b.Fatal(err)
	}
	var enc stree.SubtreeEncoder
	if err := enc.Open(sym); err != nil {
		b.Fatal(err)
	}
	if err := enc.Close(); err != nil {
		b.Fatal(err)
	}
	tokens, _ := enc.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Tree.InsertChild(root, tokens); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNoKComplexity exercises the §3 worst case: /a[b/c][b/d]-style
// patterns where grandchildren are visited once per matching frontier
// branch, scaling the subject fan-out.
func BenchmarkNoKComplexity(b *testing.B) {
	for _, fanout := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("fanout%d", fanout), func(b *testing.B) {
			var sb strings.Builder
			sb.WriteString("<a>")
			for i := 0; i < fanout; i++ {
				sb.WriteString("<b><c/><d/></b>")
			}
			sb.WriteString("</a>")
			dir := b.TempDir()
			db, err := core.LoadXML(filepath.Join(dir, "db"), strings.NewReader(sb.String()), nil)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := db.Query(`/a[b/c][b/d]`, &core.QueryOptions{Strategy: core.StrategyScan}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStreaming evaluates Q1 over the raw XML file in one pass.
func BenchmarkStreaming(b *testing.B) {
	for _, name := range benchDatasets {
		b.Run(name, func(b *testing.B) {
			e := env(b, name)
			queries, _ := workload.ForDataset(name)
			tr, err := pattern.Parse(queries[0].Expr)
			if err != nil {
				b.Fatal(err)
			}
			if err := stream.Supported(tr); err != nil {
				b.Skip(err)
			}
			b.SetBytes(e.Stats.Bytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f, err := os.Open(e.XMLPath)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := stream.Match(f, tr); err != nil {
					b.Fatal(err)
				}
				f.Close()
			}
		})
	}
}

// BenchmarkJoinReduction contrasts join work: DI joins every pattern edge;
// NoK joins only across partitions (§1's motivation). Reported as metrics.
func BenchmarkJoinReduction(b *testing.B) {
	e := env(b, "author")
	queries, _ := workload.ForDataset("author")
	expr := queries[2].Expr // Q3, bushy with a value constraint
	var nokJoins, diJoins float64
	for i := 0; i < b.N; i++ {
		_, stats, err := e.NoK.Query(expr, nil)
		if err != nil {
			b.Fatal(err)
		}
		nokJoins = float64(stats.JoinInputs)
		e.DI.ResetStats()
		if _, err := e.DI.Query(expr); err != nil {
			b.Fatal(err)
		}
		diJoins = float64(e.DI.Stats().Joins)
	}
	b.ReportMetric(nokJoins, "nok-join-inputs")
	b.ReportMetric(diJoins, "di-joins")
}
