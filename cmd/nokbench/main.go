// Command nokbench regenerates the paper's evaluation artifacts (see
// DESIGN.md §4 for the experiment index):
//
//	nokbench -table 1          Table 1: dataset and index statistics
//	nokbench -table 2          Table 2: the query categories
//	nokbench -table 3          Table 3: running times of all four systems
//	nokbench -table summary    Table 3 condensed to speedup ratios
//	nokbench -table ratios     §4.2 storage-size and header-memory claims
//	nokbench -table io         Proposition 1: single-pass page I/O
//	nokbench -table heuristic  §6.2 starting-point strategy comparison
//	nokbench -table update     §4.2 update locality
//	nokbench -table stream     streaming evaluation vs stored evaluation
//	nokbench -table skip       (st,lo,hi) page-skip ablation
//	nokbench -table planner    cost-based planner vs §6.2 heuristic pages
//	nokbench -table shard      scatter-gather speedup on sharded collections
//	nokbench -table remote     loopback remote scatter vs in-process overhead
//	nokbench -table telemetry  query telemetry capture overhead
//	nokbench -table mvcc       read latency under a concurrent writer
//	nokbench -table ingest     group-commit ingest vs per-document Insert
//	nokbench -table all        everything above
//
// Flags: -scale, -seed, -runs, -workdir, -datasets (comma-separated).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"nok/internal/bench"
	"nok/internal/buildinfo"
	"nok/internal/shardbench"
	"nok/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nokbench: ")
	table := flag.String("table", "all", "which artifact to produce")
	scale := flag.Int("scale", 1, "dataset size multiplier")
	seed := flag.Int64("seed", 0, "generator seed (0 = default)")
	runs := flag.Int("runs", 3, "timed repetitions per cell (median reported)")
	workdir := flag.String("workdir", "bench-work", "cache directory for datasets and stores")
	datasets := flag.String("datasets", "", "comma-separated dataset filter")
	inserts := flag.Int("inserts", 20, "insertions for the update experiment")
	version := flag.Bool("version", false, "print the build identity and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String())
		return
	}

	cfg := bench.Config{
		WorkDir: *workdir,
		Scale:   *scale,
		Seed:    *seed,
		Runs:    *runs,
	}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}

	run := func(name string) {
		out := os.Stdout
		switch name {
		case "1":
			fmt.Fprintln(out, "== Table 1: data set statistics ==")
			rows, err := bench.Table1(cfg)
			if err != nil {
				log.Fatal(err)
			}
			bench.WriteTable1(out, rows)
		case "2":
			fmt.Fprintln(out, "== Table 2: query categories ==")
			fmt.Fprintf(out, "%-5s %-9s %-12s %-6s %-6s %s\n",
				"query", "category", "selectivity", "shape", "value", "example")
			for _, c := range workload.Categories() {
				val := "no"
				if c.Value {
					val = "yes"
				}
				fmt.Fprintf(out, "%-5s %-9s %-12s %-6s %-6s %s\n",
					c.ID, c.Code, c.Selectivity, c.Topology, val, c.Example)
			}
		case "3":
			fmt.Fprintln(out, "== Table 3: running time (s) for DI, Nav(X-Hive*), TwigStack, NoK ==")
			rows, err := bench.Table3(cfg)
			if err != nil {
				log.Fatal(err)
			}
			bench.WriteTable3(out, rows)
		case "summary":
			rows, err := bench.Table3(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintln(out, "== Table 3 summary: competitor time / NoK time ==")
			bench.WriteSummary(out, bench.Summarize(rows))
		case "ratios":
			fmt.Fprintln(out, "== Storage ratios (§4.2) ==")
			rows, err := bench.Ratios(cfg)
			if err != nil {
				log.Fatal(err)
			}
			bench.WriteRatios(out, rows)
		case "io":
			fmt.Fprintln(out, "== Proposition 1: single-pass page I/O ==")
			rows, err := bench.IO(cfg)
			if err != nil {
				log.Fatal(err)
			}
			bench.WriteIO(out, rows)
		case "heuristic":
			fmt.Fprintln(out, "== Starting-point strategies (§6.2) ==")
			rows, err := bench.Heuristic(cfg)
			if err != nil {
				log.Fatal(err)
			}
			bench.WriteHeuristic(out, rows)
		case "update":
			fmt.Fprintln(out, "== Update locality (§4.2) ==")
			rows, err := bench.Update(cfg, *inserts)
			if err != nil {
				log.Fatal(err)
			}
			bench.WriteUpdate(out, rows)
		case "stream":
			fmt.Fprintln(out, "== Streaming evaluation ==")
			rows, err := bench.Streaming(cfg)
			if err != nil {
				log.Fatal(err)
			}
			bench.WriteStreaming(out, rows)
		case "skip":
			fmt.Fprintln(out, "== (st,lo,hi) page-skip ablation ==")
			rows, err := bench.HeaderSkip(cfg)
			if err != nil {
				log.Fatal(err)
			}
			bench.WriteHeaderSkip(out, rows)
		case "planner":
			fmt.Fprintln(out, "== Cost-based planner vs §6.2 heuristic ==")
			rows, err := bench.Planner(cfg)
			if err != nil {
				log.Fatal(err)
			}
			bench.WritePlanner(out, rows)
		case "shard":
			fmt.Fprintln(out, "== Sharded scatter-gather speedup ==")
			rows, err := shardbench.Shard(cfg)
			if err != nil {
				log.Fatal(err)
			}
			shardbench.WriteShard(out, rows)
			if sp := shardbench.ShardSpeedupAt(rows, 4); sp < shardbench.ShardSpeedupMin {
				log.Fatalf("4-shard speedup %.2fx is below the %.1fx budget", sp, shardbench.ShardSpeedupMin)
			}
		case "remote":
			fmt.Fprintln(out, "== Remote 4-shard loopback scatter vs in-process ==")
			res, err := shardbench.Remote(cfg)
			if err != nil {
				log.Fatal(err)
			}
			shardbench.WriteRemote(out, res)
			if res.Ratio > shardbench.RemoteOverheadMax {
				log.Fatalf("remote scatter is %.2fx the in-process pass, over the %.1fx budget",
					res.Ratio, shardbench.RemoteOverheadMax)
			}
		case "telemetry":
			fmt.Fprintln(out, "== Telemetry capture overhead (warm cache) ==")
			res, err := bench.Telemetry(cfg)
			if err != nil {
				log.Fatal(err)
			}
			bench.WriteTelemetry(out, res)
			if res.AggOverheadPct > bench.TelemetryBudgetPct {
				log.Fatalf("telemetry overhead %.2f%% exceeds the %.0f%% budget",
					res.AggOverheadPct, bench.TelemetryBudgetPct)
			}
		case "mvcc":
			fmt.Fprintln(out, "== MVCC read latency under a concurrent writer ==")
			res, err := bench.MVCCContention(cfg)
			if err != nil {
				log.Fatal(err)
			}
			bench.WriteMVCC(out, res)
			if res.Ratio > bench.MVCCBudgetRatio {
				log.Fatalf("contended read p50 is %.2fx the idle p50, over the %.1fx budget",
					res.Ratio, bench.MVCCBudgetRatio)
			}
		case "ingest":
			fmt.Fprintln(out, "== Group-commit ingest vs per-document Insert ==")
			res, err := bench.Ingest(cfg)
			if err != nil {
				log.Fatal(err)
			}
			bench.WriteIngest(out, res)
			if res.Speedup < bench.IngestSpeedupMin {
				log.Fatalf("group commit is only %.1fx per-Insert throughput, below the %.0fx budget",
					res.Speedup, bench.IngestSpeedupMin)
			}
			if !res.SynopsisFresh || res.Fallbacks != 0 {
				log.Fatalf("synopsis went stale during the streamed load (fresh=%v, %d planner fallbacks)",
					res.SynopsisFresh, res.Fallbacks)
			}
		default:
			log.Fatalf("unknown table %q", name)
		}
		fmt.Fprintln(out)
	}

	if *table == "all" {
		for _, t := range []string{"1", "2", "3", "summary", "ratios", "io", "heuristic", "update", "stream", "skip", "planner", "shard", "remote", "telemetry", "mvcc", "ingest"} {
			run(t)
		}
		return
	}
	run(*table)
}
