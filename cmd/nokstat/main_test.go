package main

import (
	"path/filepath"
	"strings"
	"testing"

	"nok"
	"nok/internal/samples"
)

func testStore(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "db")
	st, err := nok.Create(dir, strings.NewReader(samples.Bibliography), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunExitCodes(t *testing.T) {
	dir := testStore(t)

	tests := []struct {
		name       string
		args       []string
		code       int
		wantOut    string
		wantStderr string
	}{
		{"stats", []string{"-db", dir}, 0, "nodes:", ""},
		{"tag count", []string{"-db", dir, "-tag", "book"}, 0, "count(book)", ""},
		{"explain", []string{"-explain", "//book[price<100]"}, 0, "partitions:", ""},
		{"metrics", []string{"-db", dir, "-metrics"}, 0, "nok_pager", ""},
		{"synopsis dump", []string{"-db", dir, "-stats"}, 0, "statistics synopsis", ""},
		{"synopsis top tags", []string{"-db", dir, "-stats"}, 0, "top tags:", ""},
		{"malformed explain", []string{"-explain", "//book["}, 1, "", "nokstat:"},
		{"missing store", []string{"-db", filepath.Join(dir, "nope")}, 1, "", "nokstat:"},
		{"no args", nil, 2, "", "Usage"},
		{"stray positional", []string{"-db", dir, "extra"}, 2, "", "Usage"},
		{"unknown flag", []string{"-wat"}, 2, "", "wat"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := run(tc.args, &stdout, &stderr)
			if code != tc.code {
				t.Fatalf("run(%v) = %d, want %d (stderr: %s)", tc.args, code, tc.code, stderr.String())
			}
			if tc.wantOut != "" && !strings.Contains(stdout.String(), tc.wantOut) {
				t.Errorf("stdout missing %q:\n%s", tc.wantOut, stdout.String())
			}
			if tc.wantStderr != "" && !strings.Contains(stderr.String(), tc.wantStderr) {
				t.Errorf("stderr missing %q:\n%s", tc.wantStderr, stderr.String())
			}
		})
	}
}
