// Command nokstat inspects a NoK store or explains a query plan.
//
// Usage:
//
//	nokstat -db DIR [-tag NAME] [-stats] [-metrics]
//	nokstat -explain QUERY
//
// -stats dumps the persistent statistics synopsis the cost-based planner
// consults: whether it is present and fresh, overall cardinalities, and the
// highest-cardinality tags and root-to-node paths.
//
// -metrics dumps the process-wide metrics registry (pager I/O, index and
// join counters) in Prometheus text exposition format after the other
// output; on its own it shows the counters incurred by opening the store.
//
// Exit status: 0 on success, 1 on errors (malformed query, missing store),
// 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nok"
	"nok/internal/buildinfo"
	"nok/internal/shard"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; see cmd/nokquery for the convention.
func run(args []string, stdout, stderr io.Writer) int {
	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "nokstat: "+format+"\n", a...)
		return 1
	}

	fs := flag.NewFlagSet("nokstat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	db := fs.String("db", "", "store directory")
	tag := fs.String("tag", "", "report the node count of one tag")
	explain := fs.String("explain", "", "explain a query instead of opening a store")
	synStats := fs.Bool("stats", false, "dump the planner's statistics synopsis")
	metrics := fs.Bool("metrics", false, "dump the metrics registry in Prometheus text format")
	version := fs.Bool("version", false, "print the build identity and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.String())
		return 0
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return 2
	}

	if *explain != "" {
		out, err := nok.Explain(*explain)
		if err != nil {
			return fail("%v", err)
		}
		fmt.Fprint(stdout, out)
		if *metrics {
			fmt.Fprintln(stdout, "-- metrics --")
			fmt.Fprint(stdout, nok.MetricsText())
		}
		return 0
	}
	if *db == "" {
		fs.Usage()
		return 2
	}
	if shard.IsSharded(*db) {
		return runSharded(*db, *tag, *synStats, *metrics, stdout, fail)
	}
	st, err := nok.Open(*db, nil)
	if err != nil {
		return fail("%v", err)
	}
	defer st.Close()
	s := st.Stats()
	fmt.Fprintf(stdout, "version:      %s\n", buildinfo.String())
	fmt.Fprintf(stdout, "epoch:        %d\n", st.Epoch())
	if rec := st.Recovery(); rec.Recovered() {
		fmt.Fprintf(stdout, "recovery:     journal_replayed=%v journal_discarded=%v truncated=%d orphans_removed=%d\n",
			rec.JournalReplayed, rec.JournalDiscarded, len(rec.TruncatedFiles), len(rec.OrphansRemoved))
	}
	fmt.Fprintf(stdout, "nodes:        %d\n", s.Nodes)
	fmt.Fprintf(stdout, "pages:        %d\n", s.Pages)
	fmt.Fprintf(stdout, "max depth:    %d\n", s.MaxDepth)
	fmt.Fprintf(stdout, "|tree|:       %d bytes\n", s.TreeBytes)
	fmt.Fprintf(stdout, "values:       %d bytes\n", s.ValueBytes)
	fmt.Fprintf(stdout, "headers(RAM): %d bytes\n", s.HeaderBytes)
	if *tag != "" {
		fmt.Fprintf(stdout, "count(%s):  %d\n", *tag, st.TagCount(*tag))
	}
	if *synStats {
		printSynopsis(stdout, st.Synopsis(10))
	}
	if *metrics {
		fmt.Fprintln(stdout, "-- metrics --")
		fmt.Fprint(stdout, nok.MetricsText())
	}
	return 0
}

// runSharded is the -db path for sharded collections: the same report over
// the merged (cross-shard) stats and synopsis, plus the shard topology.
func runSharded(dir, tag string, synStats, metrics bool, stdout io.Writer, fail func(string, ...any) int) int {
	st, err := shard.Open(dir, nil)
	if err != nil {
		return fail("%v", err)
	}
	defer st.Close()
	s := st.Stats()
	man := st.Manifest()
	fmt.Fprintf(stdout, "version:      %s\n", buildinfo.String())
	fmt.Fprintf(stdout, "epoch:        %d\n", st.Epoch())
	fmt.Fprintf(stdout, "shards:       %d (%s routing)\n", man.Shards, man.Strategy)
	for i, assign := range man.Assign {
		where := "local"
		if i < len(man.Addrs) && man.Addrs[i] != "" {
			where = "remote " + man.Addrs[i]
		}
		fmt.Fprintf(stdout, "  shard %d:    %d document(s), %s\n", i, len(assign), where)
	}
	fmt.Fprintf(stdout, "nodes:        %d\n", s.Nodes)
	fmt.Fprintf(stdout, "pages:        %d\n", s.Pages)
	fmt.Fprintf(stdout, "max depth:    %d\n", s.MaxDepth)
	fmt.Fprintf(stdout, "|tree|:       %d bytes\n", s.TreeBytes)
	fmt.Fprintf(stdout, "values:       %d bytes\n", s.ValueBytes)
	fmt.Fprintf(stdout, "headers(RAM): %d bytes\n", s.HeaderBytes)
	if tag != "" {
		fmt.Fprintf(stdout, "count(%s):  %d\n", tag, st.TagCount(tag))
	}
	if synStats {
		printSynopsis(stdout, st.Synopsis(10))
	}
	if metrics {
		fmt.Fprintln(stdout, "-- metrics --")
		fmt.Fprint(stdout, nok.MetricsText())
	}
	return 0
}

// printSynopsis renders the statistics synopsis dump for -stats.
func printSynopsis(stdout io.Writer, info nok.SynopsisInfo) {
	fmt.Fprintln(stdout, "-- statistics synopsis --")
	if !info.Present {
		fmt.Fprintln(stdout, "synopsis:     absent (store predates statistics; run an update or reload to build one)")
		fmt.Fprintln(stdout, "planner:      unavailable; auto strategy uses the paper's §6.2 heuristic")
		return
	}
	fresh := "fresh"
	if info.Stale {
		fresh = fmt.Sprintf("STALE (store is at epoch %d)", info.StoreEpoch)
	}
	fmt.Fprintf(stdout, "synopsis:     epoch %d, %s\n", info.Epoch, fresh)
	fmt.Fprintf(stdout, "nodes:        %d total, %d with values\n", info.TotalNodes, info.ValueNodes)
	fmt.Fprintf(stdout, "tree pages:   %d\n", info.TreePages)
	fmt.Fprintf(stdout, "max depth:    %d\n", info.MaxDepth)
	trunc := ""
	if info.Truncated {
		trunc = " (truncated; counts for unrecorded paths fall back to tag estimates)"
	}
	fmt.Fprintf(stdout, "distinct:     %d tags, %d paths%s\n", info.Tags, info.Paths, trunc)
	if len(info.TopTags) > 0 {
		fmt.Fprintln(stdout, "top tags:")
		for _, t := range info.TopTags {
			fmt.Fprintf(stdout, "  %-20s %d\n", t.Name, t.Count)
		}
	}
	if len(info.TopPaths) > 0 {
		fmt.Fprintln(stdout, "top paths:")
		for _, p := range info.TopPaths {
			fmt.Fprintf(stdout, "  %-40s %d\n", p.Path, p.Count)
		}
	}
}
