// Command nokstat inspects a NoK store or explains a query plan.
//
// Usage:
//
//	nokstat -db DIR [-tag NAME] [-metrics]
//	nokstat -explain QUERY
//
// -metrics dumps the process-wide metrics registry (pager I/O, index and
// join counters) in Prometheus text exposition format after the other
// output; on its own it shows the counters incurred by opening the store.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"nok"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nokstat: ")
	db := flag.String("db", "", "store directory")
	tag := flag.String("tag", "", "report the node count of one tag")
	explain := flag.String("explain", "", "explain a query instead of opening a store")
	metrics := flag.Bool("metrics", false, "dump the metrics registry in Prometheus text format")
	flag.Parse()

	if *explain != "" {
		out, err := nok.Explain(*explain)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(out)
		if *metrics {
			fmt.Println("-- metrics --")
			fmt.Print(nok.MetricsText())
		}
		return
	}
	if *db == "" {
		flag.Usage()
		os.Exit(2)
	}
	st, err := nok.Open(*db, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	s := st.Stats()
	fmt.Printf("nodes:        %d\n", s.Nodes)
	fmt.Printf("pages:        %d\n", s.Pages)
	fmt.Printf("max depth:    %d\n", s.MaxDepth)
	fmt.Printf("|tree|:       %d bytes\n", s.TreeBytes)
	fmt.Printf("values:       %d bytes\n", s.ValueBytes)
	fmt.Printf("headers(RAM): %d bytes\n", s.HeaderBytes)
	if *tag != "" {
		fmt.Printf("count(%s):  %d\n", *tag, st.TagCount(*tag))
	}
	if *metrics {
		fmt.Println("-- metrics --")
		fmt.Print(nok.MetricsText())
	}
}
