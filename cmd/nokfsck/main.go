// Command nokfsck checks the integrity of a NoK store.
//
// Usage:
//
//	nokfsck [-quick] [-v] DIR
//
// Opening the store already runs crash recovery (journal rollback,
// uncommitted-tail truncation, orphan sweep); nokfsck reports what that
// did, then verifies the recovered state. Sharded collections (a SHARDS
// manifest in DIR) are detected automatically: the routing manifest is
// cross-checked against every member store and each shard is verified in
// turn, with issues prefixed by the shard that raised them. The default check is deep: every
// page checksum, the balanced-parenthesis structure of the string tree,
// all four B+ tree leaf chains, every value record, whole-file checksums
// against the commit manifest, and every Dewey-index entry resolved back
// to a live tree position and value record. The copy-on-write page
// accounting is always checked: a physical page neither referenced by a
// live epoch nor on the free list is reported as an orphaned epoch page.
// -quick restricts the run to the manifest, count, and page-accounting
// checks.
//
// Exit status: 0 when the store is clean, 1 when issues were found (or the
// store cannot be opened at all), 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nok"
	"nok/internal/buildinfo"
	"nok/internal/shard"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; see cmd/nokquery for the convention.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nokfsck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "Usage: nokfsck [-quick] [-v] DIR")
		fs.PrintDefaults()
	}
	quick := fs.Bool("quick", false, "manifest and count checks only (skip the full data scan)")
	verbose := fs.Bool("v", false, "print per-component progress counts")
	version := fs.Bool("version", false, "print the build identity and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.String())
		return 0
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	dir := fs.Arg(0)

	if shard.IsSharded(dir) {
		return runSharded(dir, *quick, *verbose, stdout, stderr)
	}
	st, err := nok.Open(dir, nil)
	if err != nil {
		fmt.Fprintf(stderr, "nokfsck: %s: %v\n", dir, err)
		return 1
	}
	defer st.Close()

	if rec := st.Recovery(); rec.Recovered() {
		fmt.Fprintf(stdout, "recovered at open: journal_replayed=%v journal_discarded=%v\n",
			rec.JournalReplayed, rec.JournalDiscarded)
		for _, f := range rec.TruncatedFiles {
			fmt.Fprintf(stdout, "  truncated uncommitted tail: %s\n", f)
		}
		for _, f := range rec.OrphansRemoved {
			fmt.Fprintf(stdout, "  removed orphan: %s\n", f)
		}
	}

	res := st.Verify(!*quick)
	mvcc := st.MVCC()
	if *verbose {
		fmt.Fprintf(stdout, "epoch:           %d\n", st.Epoch())
		fmt.Fprintf(stdout, "nodes:           %d\n", st.NodeCount())
		printMVCC(stdout, mvcc)
		if res.Deep {
			fmt.Fprintf(stdout, "pages checked:   %d\n", res.PagesChecked)
			fmt.Fprintf(stdout, "entries checked: %d\n", res.EntriesChecked)
			fmt.Fprintf(stdout, "records checked: %d\n", res.RecordsChecked)
		}
	}
	issues := len(res.Issues)
	for _, is := range res.Issues {
		fmt.Fprintf(stdout, "FAIL %s\n", is)
	}
	if mvcc.OrphanPages > 0 {
		fmt.Fprintf(stdout, "FAIL pager: %d orphaned epoch page(s) — neither referenced by a live version nor free\n", mvcc.OrphanPages)
		issues++
	}
	if issues > 0 {
		fmt.Fprintf(stdout, "%s: %d issue(s) found\n", dir, issues)
		return 1
	}
	fmt.Fprintf(stdout, "%s: ok\n", dir)
	return 0
}

// printMVCC renders the copy-on-write page accounting. FreePhysical right
// after open counts pages swept from superseded epochs and crashed
// transactions — reclaimed debris, not damage.
func printMVCC(stdout io.Writer, m nok.MVCCInfo) {
	fmt.Fprintf(stdout, "epoch pages:     %d logical, %d physical, %d free, %d orphaned\n",
		m.NumLogical, m.NumPhysical, m.FreePhysical, m.OrphanPages)
}

// runSharded verifies a sharded collection: manifest consistency first
// (every shard must agree on the broadcast root, ordinals must be strictly
// increasing and owned by exactly one shard), then each member store.
func runSharded(dir string, quick, verbose bool, stdout, stderr io.Writer) int {
	st, err := shard.Open(dir, nil)
	if err != nil {
		fmt.Fprintf(stderr, "nokfsck: %s: %v\n", dir, err)
		return 1
	}
	defer st.Close()
	man := st.Manifest()
	fmt.Fprintf(stdout, "sharded collection: %d shards, %s routing\n", man.Shards, man.Strategy)

	res := st.Verify(!quick)
	mvcc := st.MVCC()
	if verbose {
		fmt.Fprintf(stdout, "epoch:           %d\n", st.Epoch())
		fmt.Fprintf(stdout, "nodes:           %d\n", st.NodeCount())
		printMVCC(stdout, mvcc)
		if res.Deep {
			fmt.Fprintf(stdout, "pages checked:   %d\n", res.PagesChecked)
			fmt.Fprintf(stdout, "entries checked: %d\n", res.EntriesChecked)
			fmt.Fprintf(stdout, "records checked: %d\n", res.RecordsChecked)
		}
	}
	issues := len(res.Issues)
	for _, is := range res.Issues {
		fmt.Fprintf(stdout, "FAIL %s\n", is)
	}
	if mvcc.OrphanPages > 0 {
		fmt.Fprintf(stdout, "FAIL pager: %d orphaned epoch page(s) across shards — neither referenced by a live version nor free\n", mvcc.OrphanPages)
		issues++
	}
	if issues > 0 {
		fmt.Fprintf(stdout, "%s: %d issue(s) found\n", dir, issues)
		return 1
	}
	fmt.Fprintf(stdout, "%s: ok\n", dir)
	return 0
}
