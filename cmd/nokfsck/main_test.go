package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nok"
	"nok/internal/samples"
)

func testStore(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "db")
	st, err := nok.Create(dir, strings.NewReader(samples.Bibliography), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// glob1 resolves the single file matching pattern under dir (epoch-named
// index files carry a hex suffix).
func glob1(t *testing.T, dir, pattern string) string {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, pattern))
	if err != nil || len(m) != 1 {
		t.Fatalf("glob %s: %v (matches %v)", pattern, err, m)
	}
	return m[0]
}

func TestCleanStorePasses(t *testing.T) {
	dir := testStore(t)
	var stdout, stderr strings.Builder
	if code := run([]string{"-v", dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("clean store: exit %d\n%s%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), ": ok") || !strings.Contains(stdout.String(), "pages checked") {
		t.Errorf("output:\n%s", stdout.String())
	}
	stdout.Reset()
	if code := run([]string{"-quick", dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("quick on clean store: exit %d\n%s", code, stdout.String())
	}
}

// TestDetectsEveryFixture damages the store in each of the ways the
// corrupted-fixture suite covers; nokfsck must exit 1 for all of them.
func TestDetectsEveryFixture(t *testing.T) {
	fixtures := []struct {
		name    string
		corrupt func(t *testing.T, dir string)
	}{
		{"truncated-pager-file", func(t *testing.T, dir string) {
			path := filepath.Join(dir, "tree.pg")
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, fi.Size()/2); err != nil {
				t.Fatal(err)
			}
		}},
		{"flipped-byte-in-page", func(t *testing.T, dir string) {
			path := glob1(t, dir, "tagidx-*.pg")
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			raw[len(raw)/2] ^= 0xFF
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"flipped-byte-outside-page-crc", func(t *testing.T, dir string) {
			// The reserved trailer bytes are not covered by the per-page
			// CRC; only the manifest's whole-file checksum catches this.
			path := filepath.Join(dir, "tree.pg")
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			raw[len(raw)-2] ^= 0xFF
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"stale-manifest", func(t *testing.T, dir string) {
			// Sweep an index file the manifest still references.
			if err := os.Remove(glob1(t, dir, "deweyidx-*.pg")); err != nil {
				t.Fatal(err)
			}
		}},
		{"missing-value-file", func(t *testing.T, dir string) {
			if err := os.Remove(filepath.Join(dir, "values.dat")); err != nil {
				t.Fatal(err)
			}
		}},
		{"corrupt-manifest", func(t *testing.T, dir string) {
			path := filepath.Join(dir, "MANIFEST")
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			raw[len(raw)/2] ^= 0xFF
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated-values", func(t *testing.T, dir string) {
			path := filepath.Join(dir, "values.dat")
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, fi.Size()-3); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, fx := range fixtures {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			dir := testStore(t)
			fx.corrupt(t, dir)
			var stdout, stderr strings.Builder
			if code := run([]string{dir}, &stdout, &stderr); code != 1 {
				t.Errorf("exit %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
			}
		})
	}
}

func TestUsageErrors(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"-wat"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	if code := run([]string{"a", "b"}, &stdout, &stderr); code != 2 {
		t.Errorf("two dirs: exit %d, want 2", code)
	}
}
