// Command nokgen generates the synthetic benchmark datasets (see
// internal/datagen for the shapes they reproduce).
//
// Usage:
//
//	nokgen -dataset author|address|catalog|treebank|dblp -out FILE [-scale N] [-seed S]
//	nokgen -list
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"nok/internal/buildinfo"
	"nok/internal/datagen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nokgen: ")
	name := flag.String("dataset", "", "dataset to generate")
	out := flag.String("out", "", "output XML path")
	scale := flag.Int("scale", 1, "size multiplier")
	seed := flag.Int64("seed", 20040301, "generator seed")
	list := flag.Bool("list", false, "list datasets")
	version := flag.Bool("version", false, "print the build identity and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String())
		return
	}
	if *list {
		for _, s := range datagen.Specs() {
			fmt.Printf("%-10s %-6s ~%d nodes at scale 1\n", s.Name, s.Shape, s.ApproxNodes(1))
		}
		return
	}
	if *name == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	spec, ok := datagen.SpecByName(*name)
	if !ok {
		log.Fatalf("unknown dataset %q (use -list)", *name)
	}
	t0 := time.Now()
	if err := datagen.GenerateFile(spec, *out, *scale, *seed); err != nil {
		log.Fatal(err)
	}
	st, err := datagen.ComputeStats(*out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s in %v: %d bytes, %d nodes, avg depth %.1f, max depth %d, %d tags\n",
		*out, time.Since(t0).Round(time.Millisecond), st.Bytes, st.Nodes, st.AvgDepth, st.MaxDepth, st.Tags)
}
