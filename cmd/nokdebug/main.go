// Command nokdebug captures a support bundle from a running nokserve: one
// tar.gz holding everything needed to diagnose a slow or misbehaving server
// after the fact — metrics (with exemplars), the flight recorder's recent
// and slowest queries, store stats, health, and goroutine/heap/cpu
// profiles.
//
// Usage:
//
//	nokdebug -addr http://localhost:8080 [-out nok-debug.tar.gz] [-cpu 5s]
//
// Profiles require the server to run with nokserve -debug (which mounts
// net/http/pprof); without it the bundle still contains the metrics and
// query records, and MANIFEST.txt notes what was skipped. -cpu 0 skips the
// CPU profile (it blocks for the profiling window).
package main

import (
	"archive/tar"
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"nok/internal/buildinfo"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// capture is one bundle entry: a name inside the archive and the URL path
// it is fetched from.
type capture struct {
	name     string
	path     string
	optional bool // pprof endpoints: absent unless nokserve -debug
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nokdebug", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "http://localhost:8080", "base URL of the running nokserve")
	out := fs.String("out", "", "output path (default nok-debug-<timestamp>.tar.gz)")
	n := fs.Int("n", 64, "how many recent/slowest query records to request")
	cpu := fs.Duration("cpu", 0, "CPU profile duration; 0 skips the CPU profile")
	version := fs.Bool("version", false, "print the build identity and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.String())
		return 0
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return 2
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("nok-debug-%s.tar.gz", time.Now().Format("20060102-150405"))
	}

	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(stderr, "nokdebug: %v\n", err)
		return 1
	}
	if err := writeBundle(f, *addr, *n, *cpu, stdout); err != nil {
		f.Close()
		os.Remove(path)
		fmt.Fprintf(stderr, "nokdebug: %v\n", err)
		return 1
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(stderr, "nokdebug: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "nokdebug: wrote %s\n", path)
	return 0
}

// writeBundle fetches every capture from the server at base and writes the
// tar.gz to w. Required captures (metrics, queries, stats, health) must
// succeed; optional ones (pprof) are noted in MANIFEST.txt when missing.
func writeBundle(w io.Writer, base string, n int, cpu time.Duration, stdout io.Writer) error {
	base = strings.TrimRight(base, "/")
	captures := []capture{
		{name: "metrics.txt", path: "/metrics"},
		{name: "metrics-openmetrics.txt", path: "/metrics?exemplars=1"},
		{name: "queries.json", path: fmt.Sprintf("/debug/queries?n=%d", n)},
		{name: "stats.json", path: "/stats"},
		{name: "healthz.json", path: "/healthz"},
		{name: "pprof/goroutine.txt", path: "/debug/pprof/goroutine?debug=1", optional: true},
		{name: "pprof/heap.pb.gz", path: "/debug/pprof/heap", optional: true},
	}
	if cpu > 0 {
		captures = append(captures, capture{
			name:     "pprof/cpu.pb.gz",
			path:     fmt.Sprintf("/debug/pprof/profile?seconds=%d", int(cpu.Seconds())),
			optional: true,
		})
	}

	gz := gzip.NewWriter(w)
	tw := tar.NewWriter(gz)
	now := time.Now()

	var manifest strings.Builder
	fmt.Fprintf(&manifest, "nok support bundle\ncaptured: %s\nserver: %s\nnokdebug: %s\n\n", now.Format(time.RFC3339), base, buildinfo.String())

	client := &http.Client{Timeout: cpu + 30*time.Second}
	for _, c := range captures {
		if c.name == "pprof/cpu.pb.gz" {
			fmt.Fprintf(stdout, "nokdebug: capturing %v CPU profile...\n", cpu)
		}
		body, err := fetch(client, base+c.path)
		if err != nil {
			if c.optional {
				fmt.Fprintf(&manifest, "SKIPPED %s (%s): %v\n", c.name, c.path, err)
				continue
			}
			return fmt.Errorf("%s: %w", c.path, err)
		}
		if err := addFile(tw, c.name, body, now); err != nil {
			return err
		}
		fmt.Fprintf(&manifest, "%-28s %7d bytes  from %s\n", c.name, len(body), c.path)
	}
	if err := addFile(tw, "MANIFEST.txt", []byte(manifest.String()), now); err != nil {
		return err
	}
	if err := tw.Close(); err != nil {
		return err
	}
	return gz.Close()
}

func fetch(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	// Health endpoints legitimately answer 503 when degraded — capturing
	// that state is the point of the bundle — but a 404 means the endpoint
	// isn't there (pprof without -debug).
	if resp.StatusCode == http.StatusNotFound {
		return nil, fmt.Errorf("HTTP 404 (is nokserve running with -debug?)")
	}
	return body, nil
}

func addFile(tw *tar.Writer, name string, body []byte, mod time.Time) error {
	if err := tw.WriteHeader(&tar.Header{
		Name:    name,
		Mode:    0o644,
		Size:    int64(len(body)),
		ModTime: mod,
	}); err != nil {
		return err
	}
	_, err := tw.Write(body)
	return err
}
