package main

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nok"
	"nok/internal/samples"
	"nok/internal/server"
)

// startServer runs a real query service (pprof enabled) over the sample
// bibliography and sends it a little traffic so the flight recorder has
// records.
func startServer(t *testing.T, pprof bool) *httptest.Server {
	t.Helper()
	st, err := nok.Create(filepath.Join(t.TempDir(), "db"), strings.NewReader(samples.Bibliography), nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(st, server.Config{EnablePprof: pprof})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	for _, q := range []string{"%2Fbib%2Fbook", "%2F%2Fbook%5Beditor%5D"} {
		resp, err := ts.Client().Get(ts.URL + "/query?q=" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	return ts
}

// extract reads a tar.gz into a name → content map.
func extract(t *testing.T, path string) map[string][]byte {
	t.Helper()
	f, err := gzipReaderFromFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.close()
	out := make(map[string][]byte)
	tr := tar.NewReader(f.gz)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(tr)
		if err != nil {
			t.Fatal(err)
		}
		out[hdr.Name] = body
	}
	return out
}

// TestBundle is the acceptance check: the bundle extracts cleanly and
// contains the metrics snapshot, query records, and a goroutine profile.
func TestBundle(t *testing.T) {
	ts := startServer(t, true)
	out := filepath.Join(t.TempDir(), "bundle.tar.gz")

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-addr", ts.URL, "-out", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("nokdebug exited %d: %s", code, stderr.String())
	}

	files := extract(t, out)
	for _, want := range []string{
		"MANIFEST.txt", "metrics.txt", "metrics-openmetrics.txt",
		"queries.json", "stats.json", "healthz.json",
		"pprof/goroutine.txt", "pprof/heap.pb.gz",
	} {
		if len(files[want]) == 0 {
			t.Errorf("bundle missing or empty: %s (have %v)", want, names(files))
		}
	}

	if !bytes.Contains(files["metrics.txt"], []byte("nok_query_seconds")) {
		t.Error("metrics.txt missing query latency histogram")
	}
	if !bytes.Contains(files["metrics.txt"], []byte("nok_build_info")) {
		t.Error("metrics.txt missing build info metric")
	}

	var dbg struct {
		Recent []map[string]any `json:"recent"`
	}
	if err := json.Unmarshal(files["queries.json"], &dbg); err != nil {
		t.Fatalf("queries.json: %v", err)
	}
	if len(dbg.Recent) < 2 {
		t.Errorf("queries.json has %d recent records, want >= 2", len(dbg.Recent))
	}

	if !bytes.Contains(files["pprof/goroutine.txt"], []byte("goroutine")) {
		t.Error("goroutine profile looks wrong")
	}
	if !bytes.Contains(files["MANIFEST.txt"], []byte("queries.json")) {
		t.Errorf("MANIFEST.txt doesn't list captures:\n%s", files["MANIFEST.txt"])
	}
}

// TestBundleWithoutPprof checks a server without -debug still yields a
// bundle, with the profile skips recorded in the manifest.
func TestBundleWithoutPprof(t *testing.T) {
	ts := startServer(t, false)
	out := filepath.Join(t.TempDir(), "bundle.tar.gz")

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-addr", ts.URL, "-out", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("nokdebug exited %d: %s", code, stderr.String())
	}
	files := extract(t, out)
	if len(files["metrics.txt"]) == 0 || len(files["queries.json"]) == 0 {
		t.Fatalf("bundle missing required captures: %v", names(files))
	}
	if _, ok := files["pprof/goroutine.txt"]; ok {
		t.Error("goroutine profile captured without -debug?")
	}
	if !bytes.Contains(files["MANIFEST.txt"], []byte("SKIPPED pprof/goroutine.txt")) {
		t.Errorf("MANIFEST.txt doesn't record the skip:\n%s", files["MANIFEST.txt"])
	}
}

func names(files map[string][]byte) []string {
	out := make([]string, 0, len(files))
	for k := range files {
		out = append(out, k)
	}
	return out
}

type gzFile struct {
	f  io.Closer
	gz *gzip.Reader
}

func (g *gzFile) close() {
	g.gz.Close()
	g.f.Close()
}

func gzipReaderFromFile(path string) (*gzFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	gz, err := gzip.NewReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &gzFile{f: f, gz: gz}, nil
}
