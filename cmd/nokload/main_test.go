package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nok"
	"nok/internal/shard"
)

func runCLI(t *testing.T, stdin string, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunLoadsSingleStore(t *testing.T) {
	dir := t.TempDir()
	xml := filepath.Join(dir, "doc.xml")
	if err := os.WriteFile(xml, []byte("<lib><book><title>a</title></book></lib>"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errb := runCLI(t, "", "-db", filepath.Join(dir, "db"), "-xml", xml)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	if !strings.Contains(out, "nodes:") {
		t.Fatalf("missing load summary: %q", out)
	}
}

func TestFollowStdinSingleStore(t *testing.T) {
	dir := t.TempDir()
	db := filepath.Join(dir, "db")
	st, err := nok.Create(db, strings.NewReader("<lib></lib>"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	var feed strings.Builder
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&feed, "<book><title>f%d</title><price>%d</price></book>", i, i)
	}
	code, out, errb := runCLI(t, feed.String(),
		"-db", db, "-follow", "-", "-batch-docs", "8", "-batch-interval", "20ms")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	if !strings.Contains(out, "documents: 20 committed") {
		t.Fatalf("summary: %q", out)
	}

	st, err = nok.Open(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	res, err := st.Query("//book")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 20 {
		t.Fatalf("store holds %d books, want 20", len(res))
	}
}

// TestFollowTailsGrowingFileSharded drives the full -follow path: a file
// growing while nokload tails it, feeding a 4-shard collection, exiting on
// the idle limit.
func TestFollowTailsGrowingFileSharded(t *testing.T) {
	dir := t.TempDir()
	db := filepath.Join(dir, "db")
	seed := "<col>" + strings.Repeat("<doc><v>seed</v></doc>", 4) + "</col>"
	st, err := shard.Create(db, strings.NewReader(seed), &shard.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	feed := filepath.Join(dir, "feed.xml")
	if err := os.WriteFile(feed, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	writerDone := make(chan error, 1)
	go func() {
		f, err := os.OpenFile(feed, os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			writerDone <- err
			return
		}
		defer f.Close()
		for i := 0; i < 30; i++ {
			if _, err := fmt.Fprintf(f, "<doc n=\"%d\"><v>tail %d</v></doc>", i, i); err != nil {
				writerDone <- err
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		writerDone <- nil
	}()

	code, out, errb := runCLI(t, "",
		"-db", db, "-follow", feed, "-batch-docs", "8", "-batch-interval", "10ms", "-idle-exit", "300ms")
	if err := <-writerDone; err != nil {
		t.Fatalf("feed writer: %v", err)
	}
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	if !strings.Contains(out, "documents: 30 committed") {
		t.Fatalf("summary: %q", out)
	}

	re, err := shard.Open(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	res, err := re.Query("//doc")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 34 {
		t.Fatalf("collection holds %d docs, want 34", len(res))
	}
	if r := re.Verify(true); len(r.Issues) != 0 {
		t.Fatalf("verify after follow: %v", r.Issues)
	}
}

func TestFollowRejectsBadFlagCombos(t *testing.T) {
	if code, _, _ := runCLI(t, "", "-db", t.TempDir(), "-follow", "-", "-xml", "x.xml"); code != 2 {
		t.Fatalf("follow+xml: exit %d, want 2", code)
	}
	if code, _, _ := runCLI(t, ""); code != 2 {
		t.Fatalf("no flags: exit %d, want 2", code)
	}
}
