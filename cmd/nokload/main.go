// Command nokload bulk-loads an XML document into a NoK store directory,
// or — with -shards — into a sharded collection of independent stores.
//
// Usage:
//
//	nokload -db DIR -xml FILE [-pagesize N] [-reserve PCT]
//	nokload -db DIR -xml FILE -shards N [-routing hash|path]
//	nokload -db DIR -addrs http://h1:8080,,http://h3:8080
//
// With -shards, top-level documents under the collection root are split
// across N stores: -routing hash (default) balances by document ordinal,
// -routing path groups documents by their root tag so per-shard statistics
// can prune whole shards from tag-selective queries. See docs/SHARDING.md.
//
// With -addrs (and no -xml), an existing sharded collection is rewired to
// serve some or all shards from remote nokserve processes: the comma-
// separated list assigns one base URL per shard position, an empty entry
// keeping that shard local. See docs/FAULT_TOLERANCE.md.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"nok"
	"nok/internal/buildinfo"
	"nok/internal/shard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nokload: ")
	db := flag.String("db", "", "store directory to create (required)")
	xml := flag.String("xml", "", "XML document to load (required)")
	pageSize := flag.Int("pagesize", 0, "page size in bytes (default 4096)")
	reserve := flag.Int("reserve", 0, "per-page update reserve percentage (default 20)")
	shards := flag.Int("shards", 0, "split the collection across N independent stores (0 = single store)")
	routing := flag.String("routing", "hash", "shard routing strategy: hash (balance by ordinal) or path (group by root tag)")
	addrs := flag.String("addrs", "", "comma-separated remote shard base URLs (one per shard position, empty = local); rewires an existing collection, no -xml")
	version := flag.Bool("version", false, "print the build identity and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String())
		return
	}
	if *addrs != "" {
		if *db == "" || *xml != "" {
			flag.Usage()
			os.Exit(2)
		}
		list := strings.Split(*addrs, ",")
		if err := shard.SetShardAddrs(*db, list); err != nil {
			log.Fatal(err)
		}
		for s, a := range list {
			if a == "" {
				fmt.Printf("  shard %d: local\n", s)
			} else {
				fmt.Printf("  shard %d: remote %s\n", s, a)
			}
		}
		return
	}
	if *db == "" || *xml == "" {
		flag.Usage()
		os.Exit(2)
	}
	opts := &nok.Options{PageSize: *pageSize, ReservePct: *reserve}
	t0 := time.Now()
	if *shards > 0 {
		strat := shard.Strategy(*routing)
		if strat != shard.StrategyHash && strat != shard.StrategyPath {
			log.Fatalf("unknown -routing %q (want hash or path)", *routing)
		}
		st, err := shard.CreateFromFile(*db, *xml, &shard.Options{
			Shards: *shards, Strategy: strat, Store: opts,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer st.Close()
		stats := st.Stats()
		man := st.Manifest()
		fmt.Printf("loaded %s into %s in %v (%d shards, %s routing)\n",
			*xml, *db, time.Since(t0).Round(time.Millisecond), man.Shards, man.Strategy)
		fmt.Printf("  nodes: %d   pages: %d   max depth: %d\n", stats.Nodes, stats.Pages, stats.MaxDepth)
		for s, assign := range man.Assign {
			fmt.Printf("  shard %d: %d document(s)\n", s, len(assign))
		}
		if syn := st.Synopsis(0); syn.Present {
			fmt.Printf("  statistics synopsis: epoch %d, %d tags, %d paths (planner + shard pruning enabled)\n",
				syn.Epoch, syn.Tags, syn.Paths)
		}
		return
	}
	st, err := nok.CreateFromFile(*db, *xml, opts)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	stats := st.Stats()
	fmt.Printf("loaded %s into %s in %v\n", *xml, *db, time.Since(t0).Round(time.Millisecond))
	fmt.Printf("  nodes: %d   pages: %d   max depth: %d\n", stats.Nodes, stats.Pages, stats.MaxDepth)
	fmt.Printf("  |tree|: %d bytes   values: %d bytes   headers in RAM: %d bytes\n",
		stats.TreeBytes, stats.ValueBytes, stats.HeaderBytes)
	if syn := st.Synopsis(0); syn.Present {
		fmt.Printf("  statistics synopsis: epoch %d, %d tags, %d paths (planner enabled)\n",
			syn.Epoch, syn.Tags, syn.Paths)
	}
}
