// Command nokload bulk-loads an XML document into a NoK store directory.
//
// Usage:
//
//	nokload -db DIR -xml FILE [-pagesize N] [-reserve PCT]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"nok"
	"nok/internal/buildinfo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nokload: ")
	db := flag.String("db", "", "store directory to create (required)")
	xml := flag.String("xml", "", "XML document to load (required)")
	pageSize := flag.Int("pagesize", 0, "page size in bytes (default 4096)")
	reserve := flag.Int("reserve", 0, "per-page update reserve percentage (default 20)")
	version := flag.Bool("version", false, "print the build identity and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String())
		return
	}
	if *db == "" || *xml == "" {
		flag.Usage()
		os.Exit(2)
	}
	t0 := time.Now()
	st, err := nok.CreateFromFile(*db, *xml, &nok.Options{PageSize: *pageSize, ReservePct: *reserve})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	stats := st.Stats()
	fmt.Printf("loaded %s into %s in %v\n", *xml, *db, time.Since(t0).Round(time.Millisecond))
	fmt.Printf("  nodes: %d   pages: %d   max depth: %d\n", stats.Nodes, stats.Pages, stats.MaxDepth)
	fmt.Printf("  |tree|: %d bytes   values: %d bytes   headers in RAM: %d bytes\n",
		stats.TreeBytes, stats.ValueBytes, stats.HeaderBytes)
	if syn := st.Synopsis(0); syn.Present {
		fmt.Printf("  statistics synopsis: epoch %d, %d tags, %d paths (planner enabled)\n",
			syn.Epoch, syn.Tags, syn.Paths)
	}
}
