// Command nokload bulk-loads an XML document into a NoK store directory,
// or — with -shards — into a sharded collection of independent stores, or —
// with -follow — streams documents into an existing store through the
// group-commit ingest pipeline.
//
// Usage:
//
//	nokload -db DIR -xml FILE [-pagesize N] [-reserve PCT]
//	nokload -db DIR -xml FILE -shards N [-routing hash|path]
//	nokload -db DIR -addrs http://h1:8080,,http://h3:8080
//	nokload -db DIR -follow FILE|- [-parent ID] [-batch-docs N] [-batch-bytes N] [-batch-interval D] [-idle-exit D]
//
// With -shards, top-level documents under the collection root are split
// across N stores: -routing hash (default) balances by document ordinal,
// -routing path groups documents by their root tag so per-shard statistics
// can prune whole shards from tag-selective queries. See docs/SHARDING.md.
//
// With -addrs (and no -xml), an existing sharded collection is rewired to
// serve some or all shards from remote nokserve processes: the comma-
// separated list assigns one base URL per shard position, an empty entry
// keeping that shard local. See docs/FAULT_TOLERANCE.md.
//
// With -follow (and no -xml), the store must already exist — single or
// sharded, probed automatically. Documents read from FILE (tailed as it
// grows, like tail -f) or stdin are batched into group commits: many
// documents per MVCC epoch, the statistics synopsis maintained
// incrementally. -idle-exit D stops following after D without new data;
// the default follows until interrupted. See docs/INGEST.md.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"nok"
	"nok/internal/buildinfo"
	"nok/internal/ingest"
	"nok/internal/shard"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fail := func(err error) int {
		fmt.Fprintln(stderr, "nokload:", err)
		return 1
	}
	fs := flag.NewFlagSet("nokload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	db := fs.String("db", "", "store directory to create (required)")
	xml := fs.String("xml", "", "XML document to load (required unless -follow/-addrs)")
	pageSize := fs.Int("pagesize", 0, "page size in bytes (default 4096)")
	reserve := fs.Int("reserve", 0, "per-page update reserve percentage (default 20)")
	shards := fs.Int("shards", 0, "split the collection across N independent stores (0 = single store)")
	routing := fs.String("routing", "hash", "shard routing strategy: hash (balance by ordinal) or path (group by root tag)")
	addrs := fs.String("addrs", "", "comma-separated remote shard base URLs (one per shard position, empty = local); rewires an existing collection, no -xml")
	follow := fs.String("follow", "", "stream documents from FILE (- for stdin) into an existing store via group commit; tails the file as it grows")
	parent := fs.String("parent", "0", "with -follow, the node ID new documents append under")
	batchDocs := fs.Int("batch-docs", 0, "with -follow, flush a batch at this many documents (default 256)")
	batchBytes := fs.Int64("batch-bytes", 0, "with -follow, flush a batch at this many bytes (default 1MiB)")
	batchInterval := fs.Duration("batch-interval", 0, "with -follow, flush a non-empty batch at least this often (default 200ms)")
	idleExit := fs.Duration("idle-exit", 0, "with -follow FILE, exit after this long without new data (0 = follow until interrupted)")
	version := fs.Bool("version", false, "print the build identity and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.String())
		return 0
	}
	if *addrs != "" {
		if *db == "" || *xml != "" {
			fs.Usage()
			return 2
		}
		list := strings.Split(*addrs, ",")
		if err := shard.SetShardAddrs(*db, list); err != nil {
			return fail(err)
		}
		for s, a := range list {
			if a == "" {
				fmt.Fprintf(stdout, "  shard %d: local\n", s)
			} else {
				fmt.Fprintf(stdout, "  shard %d: remote %s\n", s, a)
			}
		}
		return 0
	}
	if *follow != "" {
		if *db == "" || *xml != "" {
			fs.Usage()
			return 2
		}
		opt := ingest.Options{
			Parent:        *parent,
			BatchDocs:     *batchDocs,
			BatchBytes:    *batchBytes,
			BatchInterval: *batchInterval,
		}
		return followStream(*db, *follow, *idleExit, opt, stdin, stdout, stderr)
	}
	if *db == "" || *xml == "" {
		fs.Usage()
		return 2
	}
	opts := &nok.Options{PageSize: *pageSize, ReservePct: *reserve}
	t0 := time.Now()
	if *shards > 0 {
		strat := shard.Strategy(*routing)
		if strat != shard.StrategyHash && strat != shard.StrategyPath {
			return fail(fmt.Errorf("unknown -routing %q (want hash or path)", *routing))
		}
		st, err := shard.CreateFromFile(*db, *xml, &shard.Options{
			Shards: *shards, Strategy: strat, Store: opts,
		})
		if err != nil {
			return fail(err)
		}
		defer st.Close()
		stats := st.Stats()
		man := st.Manifest()
		fmt.Fprintf(stdout, "loaded %s into %s in %v (%d shards, %s routing)\n",
			*xml, *db, time.Since(t0).Round(time.Millisecond), man.Shards, man.Strategy)
		fmt.Fprintf(stdout, "  nodes: %d   pages: %d   max depth: %d\n", stats.Nodes, stats.Pages, stats.MaxDepth)
		for s, assign := range man.Assign {
			fmt.Fprintf(stdout, "  shard %d: %d document(s)\n", s, len(assign))
		}
		if syn := st.Synopsis(0); syn.Present {
			fmt.Fprintf(stdout, "  statistics synopsis: epoch %d, %d tags, %d paths (planner + shard pruning enabled)\n",
				syn.Epoch, syn.Tags, syn.Paths)
		}
		return 0
	}
	st, err := nok.CreateFromFile(*db, *xml, opts)
	if err != nil {
		return fail(err)
	}
	defer st.Close()
	stats := st.Stats()
	fmt.Fprintf(stdout, "loaded %s into %s in %v\n", *xml, *db, time.Since(t0).Round(time.Millisecond))
	fmt.Fprintf(stdout, "  nodes: %d   pages: %d   max depth: %d\n", stats.Nodes, stats.Pages, stats.MaxDepth)
	fmt.Fprintf(stdout, "  |tree|: %d bytes   values: %d bytes   headers in RAM: %d bytes\n",
		stats.TreeBytes, stats.ValueBytes, stats.HeaderBytes)
	if syn := st.Synopsis(0); syn.Present {
		fmt.Fprintf(stdout, "  statistics synopsis: epoch %d, %d tags, %d paths (planner enabled)\n",
			syn.Epoch, syn.Tags, syn.Paths)
	}
	return 0
}

// followTarget is ingest.Target plus the lifecycle both store kinds share,
// so followStream handles single and sharded collections uniformly.
type followTarget interface {
	ingest.Target
	Close() error
}

// followStream tails src (a growing file, or stdin for "-") into an
// existing store through the group-commit pipeline, until the input ends,
// the idle limit expires, or the process is interrupted.
func followStream(db, src string, idleExit time.Duration, opt ingest.Options, stdin io.Reader, stdout, stderr io.Writer) int {
	fail := func(err error) int {
		fmt.Fprintln(stderr, "nokload:", err)
		return 1
	}
	var target followTarget
	if shard.IsSharded(db) {
		st, err := shard.Open(db, nil)
		if err != nil {
			return fail(err)
		}
		target = st
	} else {
		st, err := nok.Open(db, nil)
		if err != nil {
			return fail(err)
		}
		target = st
	}
	defer target.Close()

	var in io.Reader
	if src == "-" {
		// Stdin ends with a real EOF when the writer closes it; no polling.
		in = stdin
	} else {
		f, err := os.Open(src)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		tr := ingest.NewTailReader(f)
		tr.IdleLimit = idleExit
		in = tr
		// Interrupt stops the tail between documents; the pipeline then
		// flushes what was accepted before exiting.
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		defer signal.Stop(sig)
		go func() {
			<-sig
			tr.Stop()
		}()
	}

	p := ingest.NewPipeline(target, opt)
	t0 := time.Now()
	sp := ingest.NewSplitter(in)
	var streamErr error
	for {
		doc, err := sp.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			streamErr = err
			break
		}
		for {
			err := p.Submit(doc)
			if err == nil {
				break
			}
			var bp *ingest.BackpressureError
			if !errors.As(err, &bp) {
				streamErr = err
				break
			}
			time.Sleep(bp.RetryAfter)
		}
		if streamErr != nil {
			break
		}
	}
	if err := p.Close(); err != nil && streamErr == nil {
		streamErr = err
	}
	stats := p.Stats()
	fmt.Fprintf(stdout, "followed %s into %s for %v\n", src, db, time.Since(t0).Round(time.Millisecond))
	fmt.Fprintf(stdout, "  documents: %d committed in %d group commit(s), %d rejected\n",
		stats.Docs, stats.Batches, stats.Rejected)
	fmt.Fprintf(stdout, "  bytes: %d   backpressure refusals: %d   epoch: %d\n",
		stats.Bytes, stats.Backpressured, target.Epoch())
	if stats.LastReject != "" {
		fmt.Fprintf(stdout, "  last rejection: %s\n", stats.LastReject)
	}
	if streamErr != nil {
		return fail(streamErr)
	}
	return 0
}
