package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nok"
	"nok/internal/samples"
)

// testStore builds a store once per test and returns its directory.
func testStore(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "db")
	st, err := nok.Create(dir, strings.NewReader(samples.Bibliography), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunExitCodes(t *testing.T) {
	dir := testStore(t)
	xmlPath := filepath.Join(t.TempDir(), "bib.xml")
	if err := os.WriteFile(xmlPath, []byte(samples.Bibliography), 0o644); err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		name       string
		args       []string
		code       int
		wantOut    string // substring of stdout on success
		wantStderr string // substring of stderr on failure
	}{
		{"happy path", []string{"-db", dir, "/bib/book/title"}, 0, "4 result(s)", ""},
		{"happy stats", []string{"-db", dir, "-stats", "//book"}, 0, "partitions=", ""},
		{"happy analyze", []string{"-db", dir, "-analyze", "//book"}, 0, "query //book", ""},
		{"analyze shows chooser", []string{"-db", dir, "-analyze", "//book"}, 0, "requested=auto", ""},
		{"stats shows chooser", []string{"-db", dir, "-stats", "//book"}, 0, "chosen-by=", ""},
		{"plan only", []string{"-db", dir, "-plan", "//book[price<100]"}, 0, "est total", ""},
		{"no planner", []string{"-db", dir, "-no-planner", "-stats", "//book"}, 0, "heuristic", ""},
		{"degraded strategy", []string{"-db", dir, "-strategy", "value", "-stats", "//book"}, 0, "degraded", ""},
		{"plan without store", []string{"-xml", xmlPath, "-plan", "//book"}, 1, "", "-plan requires a store"},
		{"happy streaming", []string{"-xml", xmlPath, "/bib/book/title"}, 0, "streaming, single pass", ""},
		{"malformed query", []string{"-db", dir, "/bib/book["}, 1, "", "nokquery:"},
		{"missing store", []string{"-db", filepath.Join(dir, "nope"), "//book"}, 1, "", "nokquery:"},
		{"missing xml file", []string{"-xml", xmlPath + ".nope", "//book"}, 1, "", "nokquery:"},
		{"malformed streaming query", []string{"-xml", xmlPath, "//book[["}, 1, "", "nokquery:"},
		{"unknown strategy", []string{"-db", dir, "-strategy", "bogus", "//book"}, 1, "", "unknown strategy"},
		{"analyze without store", []string{"-xml", xmlPath, "-analyze", "//book"}, 1, "", "-analyze requires a store"},
		{"no query", []string{"-db", dir}, 2, "", "Usage"},
		{"db and xml both", []string{"-db", dir, "-xml", xmlPath, "//book"}, 2, "", "Usage"},
		{"neither db nor xml", []string{"//book"}, 2, "", "Usage"},
		{"unknown flag", []string{"-db", dir, "-wat", "//book"}, 2, "", "wat"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := run(tc.args, &stdout, &stderr)
			if code != tc.code {
				t.Fatalf("run(%v) = %d, want %d (stderr: %s)", tc.args, code, tc.code, stderr.String())
			}
			if tc.wantOut != "" && !strings.Contains(stdout.String(), tc.wantOut) {
				t.Errorf("stdout missing %q:\n%s", tc.wantOut, stdout.String())
			}
			if tc.wantStderr != "" && !strings.Contains(stderr.String(), tc.wantStderr) {
				t.Errorf("stderr missing %q:\n%s", tc.wantStderr, stderr.String())
			}
			if code != 0 && stderr.Len() == 0 {
				t.Error("failure with empty stderr")
			}
		})
	}
}
