// Command nokquery evaluates a path expression against a NoK store (or a
// sharded collection, detected automatically), or — with -xml — directly
// against an XML file in one streaming pass without building a store.
//
// Usage:
//
//	nokquery -db DIR [-strategy auto|scan|tag|value|path] [-no-planner] [-stats] [-analyze]
//	         [-timeout D] [-partial] QUERY
//	nokquery -db DIR -plan QUERY
//	nokquery -xml FILE QUERY
//
// -analyze runs the query with tracing enabled and prints the executed plan
// (EXPLAIN ANALYZE): every phase with its duration, starting-point strategy,
// and pages scanned vs skipped. -plan prints the cost-based planner's plan
// (estimated access paths, cardinalities and pages) without executing the
// query — EXPLAIN to -analyze's EXPLAIN ANALYZE.
//
// Exit status: 0 on success, 1 on evaluation errors (malformed query,
// missing store, unreadable XML), 2 on usage errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"nok"
	"nok/internal/buildinfo"
	"nok/internal/shard"
)

// queryStore is the store surface nokquery needs; both *nok.Store and the
// sharded *shard.Store satisfy it.
type queryStore interface {
	Plan(expr string) (string, error)
	QueryAnalyze(expr string, opts *nok.QueryOptions) ([]nok.Result, *nok.QueryStats, string, error)
	QueryWithOptionsContext(ctx context.Context, expr string, opts *nok.QueryOptions) ([]nok.Result, *nok.QueryStats, error)
	Close() error
}

// openStore opens dir as a sharded collection when a SHARDS manifest is
// present, as a single store otherwise.
func openStore(dir string) (queryStore, error) {
	if shard.IsSharded(dir) {
		return shard.Open(dir, nil)
	}
	return nok.Open(dir, nil)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, evaluates, writes
// human-readable output to stdout and errors to stderr, and returns the
// process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "nokquery: "+format+"\n", a...)
		return 1
	}

	fs := flag.NewFlagSet("nokquery", flag.ContinueOnError)
	fs.SetOutput(stderr)
	db := fs.String("db", "", "store directory")
	xml := fs.String("xml", "", "stream-evaluate against an XML file instead of a store")
	strategy := fs.String("strategy", "auto", "starting-point strategy: auto, scan, tag, value, path")
	showStats := fs.Bool("stats", false, "print evaluation statistics")
	analyze := fs.Bool("analyze", false, "print the executed plan with per-phase timings (EXPLAIN ANALYZE)")
	planOnly := fs.Bool("plan", false, "print the cost-based plan without executing the query")
	noPlanner := fs.Bool("no-planner", false, "keep auto strategy on the paper's §6.2 heuristic even when planner statistics exist")
	timeout := fs.Duration("timeout", 0, "per-query deadline (0 = none); exceeded deadlines abort the matching loops mid-scan")
	partial := fs.Bool("partial", false, "accept degraded partial results when a remote shard is unreachable")
	version := fs.Bool("version", false, "print the build identity and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.String())
		return 0
	}
	if (*db == "") == (*xml == "") || fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	expr := fs.Arg(0)

	if *xml != "" {
		if *analyze {
			return fail("-analyze requires a store (-db); streaming mode has no stored pages to trace")
		}
		if *planOnly {
			return fail("-plan requires a store (-db); streaming mode has no statistics to plan against")
		}
		f, err := os.Open(*xml)
		if err != nil {
			return fail("%v", err)
		}
		defer f.Close()
		t0 := time.Now()
		n := 0
		err = nok.Stream(f, expr, func(r nok.Result) bool {
			n++
			if r.HasValue {
				fmt.Fprintf(stdout, "%-16s %q\n", r.ID, r.Value)
			} else {
				fmt.Fprintf(stdout, "%-16s\n", r.ID)
			}
			return true
		})
		if err != nil {
			return fail("%v", err)
		}
		fmt.Fprintf(stdout, "-- %d result(s) in %v (streaming, single pass)\n", n, time.Since(t0).Round(time.Microsecond))
		return 0
	}

	var strat nok.Strategy
	switch *strategy {
	case "auto":
		strat = nok.StrategyAuto
	case "scan":
		strat = nok.StrategyScan
	case "tag":
		strat = nok.StrategyTagIndex
	case "value":
		strat = nok.StrategyValueIndex
	case "path":
		strat = nok.StrategyPathIndex
	default:
		return fail("unknown strategy %q", *strategy)
	}

	st, err := openStore(*db)
	if err != nil {
		return fail("%v", err)
	}
	defer st.Close()

	if *planOnly {
		text, err := st.Plan(expr)
		if err != nil {
			return fail("%v", err)
		}
		fmt.Fprint(stdout, text)
		return 0
	}

	opts := &nok.QueryOptions{Strategy: strat, DisablePlanner: *noPlanner, AllowPartial: *partial}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	t0 := time.Now()
	var (
		rs    []nok.Result
		stats *nok.QueryStats
		plan  string
	)
	if *analyze {
		rs, stats, plan, err = st.QueryAnalyze(expr, opts)
	} else {
		rs, stats, err = st.QueryWithOptionsContext(ctx, expr, opts)
	}
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			return fail("query exceeded the -timeout deadline (%v): %v", *timeout, err)
		case errors.Is(err, nok.ErrShardUnavailable):
			return fail("%v (re-run with -partial to accept degraded results)", err)
		}
		return fail("%v", err)
	}
	elapsed := time.Since(t0)
	for _, r := range rs {
		if r.HasValue {
			fmt.Fprintf(stdout, "%-16s %-12s %q\n", r.ID, r.Tag, r.Value)
		} else {
			fmt.Fprintf(stdout, "%-16s %-12s\n", r.ID, r.Tag)
		}
	}
	fmt.Fprintf(stdout, "-- %d result(s) in %v\n", len(rs), elapsed.Round(time.Microsecond))
	if stats.Degraded {
		fmt.Fprintf(stdout, "-- DEGRADED: shard(s) %v unavailable; results are a correct subset of the full answer\n", stats.MissingShards)
	}
	if *showStats {
		fmt.Fprintf(stdout, "-- partitions=%d starts=%d npm=%d visited=%d joins=%d strategies=%v pages=%d/%d scanned/skipped\n",
			stats.Partitions, stats.StartingPoints, stats.NPMCalls,
			stats.NodesVisited, stats.JoinInputs, stats.StrategyUsed,
			stats.PagesScanned, stats.PagesSkipped)
		fmt.Fprintf(stdout, "-- %s\n", strategyLine(stats))
		printShards(stdout, stats)
	}
	if *analyze {
		fmt.Fprint(stdout, plan)
		fmt.Fprintf(stdout, "-- %s\n", strategyLine(stats))
		printShards(stdout, stats)
	}
	return 0
}

// printShards reports per-shard fan-out when the query ran against a
// sharded collection: which shards were pruned by statistics (and why),
// and what each live shard contributed.
func printShards(stdout io.Writer, stats *nok.QueryStats) {
	if len(stats.Shards) == 0 {
		return
	}
	for _, sh := range stats.Shards {
		if sh.Unavailable {
			fmt.Fprintf(stdout, "-- shard %d: UNAVAILABLE\n", sh.Shard)
		} else if sh.Skipped {
			fmt.Fprintf(stdout, "-- shard %d: pruned (%s)\n", sh.Shard, sh.SkipReason)
		} else {
			fmt.Fprintf(stdout, "-- shard %d: %d result(s) in %v\n",
				sh.Shard, sh.Results, sh.Duration.Round(time.Microsecond))
		}
	}
}

// strategyLine reports the requested strategy against what actually ran,
// making silent degradations (a forced strategy with no usable constraint,
// a planner pick that fell back) visible, and says whether the cost-based
// planner chose the strategies.
func strategyLine(stats *nok.QueryStats) string {
	chooser := "heuristic §6.2"
	if stats.Planned {
		chooser = fmt.Sprintf("cost-based planner (stats epoch %d)", stats.PlanEpoch)
	}
	degraded := ""
	if stats.Requested != nok.StrategyAuto {
		for _, used := range stats.StrategyUsed {
			if used != stats.Requested && used != nok.StrategySkipped {
				degraded = fmt.Sprintf(" (degraded to %v)", used)
				break
			}
		}
	}
	return fmt.Sprintf("requested=%v%s effective=%v chosen-by=%s",
		stats.Requested, degraded, stats.StrategyUsed, chooser)
}
