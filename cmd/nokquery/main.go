// Command nokquery evaluates a path expression against a NoK store, or —
// with -xml — directly against an XML file in one streaming pass without
// building a store.
//
// Usage:
//
//	nokquery -db DIR [-strategy auto|scan|tag|value|path] [-stats] [-analyze] QUERY
//	nokquery -xml FILE QUERY
//
// -analyze runs the query with tracing enabled and prints the executed plan
// (EXPLAIN ANALYZE): every phase with its duration, starting-point strategy,
// and pages scanned vs skipped.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"nok"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nokquery: ")
	db := flag.String("db", "", "store directory")
	xml := flag.String("xml", "", "stream-evaluate against an XML file instead of a store")
	strategy := flag.String("strategy", "auto", "starting-point strategy: auto, scan, tag, value, path")
	showStats := flag.Bool("stats", false, "print evaluation statistics")
	analyze := flag.Bool("analyze", false, "print the executed plan with per-phase timings (EXPLAIN ANALYZE)")
	flag.Parse()
	if (*db == "") == (*xml == "") || flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	expr := flag.Arg(0)

	if *xml != "" {
		if *analyze {
			log.Fatal("-analyze requires a store (-db); streaming mode has no stored pages to trace")
		}
		f, err := os.Open(*xml)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		t0 := time.Now()
		n := 0
		err = nok.Stream(f, expr, func(r nok.Result) bool {
			n++
			if r.HasValue {
				fmt.Printf("%-16s %q\n", r.ID, r.Value)
			} else {
				fmt.Printf("%-16s\n", r.ID)
			}
			return true
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("-- %d result(s) in %v (streaming, single pass)\n", n, time.Since(t0).Round(time.Microsecond))
		return
	}

	var strat nok.Strategy
	switch *strategy {
	case "auto":
		strat = nok.StrategyAuto
	case "scan":
		strat = nok.StrategyScan
	case "tag":
		strat = nok.StrategyTagIndex
	case "value":
		strat = nok.StrategyValueIndex
	case "path":
		strat = nok.StrategyPathIndex
	default:
		log.Fatalf("unknown strategy %q", *strategy)
	}

	st, err := nok.Open(*db, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	opts := &nok.QueryOptions{Strategy: strat}
	t0 := time.Now()
	var (
		rs    []nok.Result
		stats *nok.QueryStats
		plan  string
	)
	if *analyze {
		rs, stats, plan, err = st.QueryAnalyze(expr, opts)
	} else {
		rs, stats, err = st.QueryWithOptions(expr, opts)
	}
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(t0)
	for _, r := range rs {
		if r.HasValue {
			fmt.Printf("%-16s %-12s %q\n", r.ID, r.Tag, r.Value)
		} else {
			fmt.Printf("%-16s %-12s\n", r.ID, r.Tag)
		}
	}
	fmt.Printf("-- %d result(s) in %v\n", len(rs), elapsed.Round(time.Microsecond))
	if *showStats {
		fmt.Printf("-- partitions=%d starts=%d npm=%d visited=%d joins=%d strategies=%v pages=%d/%d scanned/skipped\n",
			stats.Partitions, stats.StartingPoints, stats.NPMCalls,
			stats.NodesVisited, stats.JoinInputs, stats.StrategyUsed,
			stats.PagesScanned, stats.PagesSkipped)
	}
	if *analyze {
		fmt.Print(plan)
	}
}
