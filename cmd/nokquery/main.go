// Command nokquery evaluates a path expression against a NoK store, or —
// with -xml — directly against an XML file in one streaming pass without
// building a store.
//
// Usage:
//
//	nokquery -db DIR [-strategy auto|scan|tag|value|path] [-stats] QUERY
//	nokquery -xml FILE QUERY
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"nok"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nokquery: ")
	db := flag.String("db", "", "store directory")
	xml := flag.String("xml", "", "stream-evaluate against an XML file instead of a store")
	strategy := flag.String("strategy", "auto", "starting-point strategy: auto, scan, tag, value, path")
	showStats := flag.Bool("stats", false, "print evaluation statistics")
	flag.Parse()
	if (*db == "") == (*xml == "") || flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	expr := flag.Arg(0)

	if *xml != "" {
		f, err := os.Open(*xml)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		t0 := time.Now()
		n := 0
		err = nok.Stream(f, expr, func(r nok.Result) bool {
			n++
			if r.HasValue {
				fmt.Printf("%-16s %q\n", r.ID, r.Value)
			} else {
				fmt.Printf("%-16s\n", r.ID)
			}
			return true
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("-- %d result(s) in %v (streaming, single pass)\n", n, time.Since(t0).Round(time.Microsecond))
		return
	}

	var strat nok.Strategy
	switch *strategy {
	case "auto":
		strat = nok.StrategyAuto
	case "scan":
		strat = nok.StrategyScan
	case "tag":
		strat = nok.StrategyTagIndex
	case "value":
		strat = nok.StrategyValueIndex
	case "path":
		strat = nok.StrategyPathIndex
	default:
		log.Fatalf("unknown strategy %q", *strategy)
	}

	st, err := nok.Open(*db, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	t0 := time.Now()
	rs, stats, err := st.QueryWithOptions(expr, &nok.QueryOptions{Strategy: strat})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(t0)
	for _, r := range rs {
		if r.HasValue {
			fmt.Printf("%-16s %-12s %q\n", r.ID, r.Tag, r.Value)
		} else {
			fmt.Printf("%-16s %-12s\n", r.ID, r.Tag)
		}
	}
	fmt.Printf("-- %d result(s) in %v\n", len(rs), elapsed.Round(time.Microsecond))
	if *showStats {
		fmt.Printf("-- partitions=%d starts=%d npm=%d visited=%d joins=%d strategies=%v\n",
			stats.Partitions, stats.StartingPoints, stats.NPMCalls,
			stats.NodesVisited, stats.JoinInputs, stats.StrategyUsed)
	}
}
