package main

import (
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"nok"
	"nok/internal/samples"
)

func TestRunUsageAndOpenErrors(t *testing.T) {
	tests := []struct {
		name       string
		args       []string
		code       int
		wantStderr string
	}{
		{"no db", nil, 2, "Usage"},
		{"stray positional", []string{"-db", "x", "extra"}, 2, "Usage"},
		{"unknown flag", []string{"-wat"}, 2, "wat"},
		{"missing store", []string{"-db", filepath.Join(t.TempDir(), "nope")}, 1, "nokserve:"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := run(tc.args, &stdout, &stderr)
			if code != tc.code {
				t.Fatalf("run(%v) = %d, want %d (stderr: %s)", tc.args, code, tc.code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.wantStderr) {
				t.Errorf("stderr missing %q:\n%s", tc.wantStderr, stderr.String())
			}
		})
	}
}

// TestRunGracefulShutdown drives the whole binary path in-process: serve,
// answer a query, then SIGTERM and expect a clean exit 0 after draining.
func TestRunGracefulShutdown(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	st, err := nok.Create(dir, strings.NewReader(samples.Bibliography), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reserve a free port, release it, and hand it to the server.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	var stdout, stderr strings.Builder
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-db", dir, "-addr", addr, "-drain", "5s"}, &stdout, &stderr)
	}()

	// Wait until the server answers, then query it.
	base := "http://" + addr
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v\nstderr: %s", err, stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, err := http.Get(base + "/query?q=%2Fbib%2Fbook")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("query: %v (status %v)", err, resp)
	}
	resp.Body.Close()

	// SIGTERM ourselves: run's NotifyContext catches it and drains.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("run exited %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("run did not exit after SIGTERM\nstdout: %s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "shutting down") {
		t.Errorf("stdout missing shutdown notice: %s", stdout.String())
	}
	// The listener must be gone.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("listener still accepting after shutdown")
	}
	// The store must be closed and reusable.
	st2, err := nok.Open(dir, nil)
	if err != nil {
		t.Fatalf("reopen after shutdown: %v", err)
	}
	st2.Close()
}
