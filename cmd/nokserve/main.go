// Command nokserve serves path queries over an open NoK store: a
// long-lived HTTP process with a bounded worker pool, admission control,
// an invalidating LRU result cache, per-request deadlines, Prometheus
// metrics, and graceful shutdown on SIGINT/SIGTERM. A directory holding a
// SHARDS manifest (built by nokload -shards) is served as a sharded
// collection: queries scatter across member stores in parallel, shards a
// query provably cannot match are pruned, and the result cache is
// invalidated per shard.
//
// Usage:
//
//	nokserve -db DIR [-addr :8080] [-workers N] [-queue N] [-cache N]
//	         [-timeout 10s] [-drain 30s]
//	         [-batch-docs N] [-batch-bytes N] [-batch-interval D] [-ingest-pending N]
//
// Endpoints: /query, /explain, /value/{id}, POST /insert, POST /ingest,
// DELETE /node/{id}, /stats, /metrics, /healthz[?deep=1] — see
// docs/SERVER.md and docs/INGEST.md. POST /ingest streams many documents
// through the shared group-commit pipeline (the -batch-* flags tune its
// flush triggers; overload answers 429 + Retry-After).
// A failed deep verification (or a mid-transaction update failure) flips
// the server into degraded read-only mode; restart the process to run
// recovery.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nok"
	"nok/internal/buildinfo"
	"nok/internal/ingest"
	"nok/internal/server"
	"nok/internal/shard"
	"nok/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nokserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	db := fs.String("db", "", "store directory (required)")
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "worker-pool size (default GOMAXPROCS)")
	queue := fs.Int("queue", 0, "admission queue depth (default 2×workers)")
	cache := fs.Int("cache", 0, "result-cache entries, -1 disables (default 1024)")
	timeout := fs.Duration("timeout", 10*time.Second, "per-query deadline ceiling")
	queryTimeout := fs.Duration("query-timeout", 0, "alias for -timeout; the lower of the two wins when both are set")
	allowPartial := fs.Bool("allow-partial", false, "answer with degraded partial results when a shard is unreachable (per-request ?partial= overrides)")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	debug := fs.Bool("debug", false, "mount net/http/pprof under /debug/pprof/")
	slowLog := fs.String("slow-log", "", "slow-query log destination: a file path, or \"stderr\"")
	slowThreshold := fs.Duration("slow-threshold", 250*time.Millisecond, "queries at least this slow go to the slow-query log")
	slowInterval := fs.Duration("slow-interval", time.Second, "minimum spacing between slow-query log lines")
	batchDocs := fs.Int("batch-docs", 0, "ingest: flush a batch at this many documents (default 256)")
	batchBytes := fs.Int64("batch-bytes", 0, "ingest: flush a batch at this many bytes (default 1MiB)")
	batchInterval := fs.Duration("batch-interval", 0, "ingest: flush a non-empty batch at least this often (default 200ms)")
	ingestPending := fs.Int64("ingest-pending", 0, "ingest: in-flight byte budget before 429 backpressure (default 8MiB)")
	version := fs.Bool("version", false, "print the build identity and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.String())
		return 0
	}
	if *db == "" || fs.NArg() != 0 {
		fs.Usage()
		return 2
	}

	var (
		st       server.Backend
		topology string
	)
	if shard.IsSharded(*db) {
		sst, err := shard.Open(*db, nil)
		if err != nil {
			fmt.Fprintf(stderr, "nokserve: %v\n", err)
			return 1
		}
		man := sst.Manifest()
		nRemote := 0
		for _, a := range man.Addrs {
			if a != "" {
				nRemote++
			}
		}
		topology = fmt.Sprintf(", %d shards (%s routing)", man.Shards, man.Strategy)
		if nRemote > 0 {
			topology += fmt.Sprintf(", %d remote", nRemote)
		}
		st = sst
	} else {
		sst, err := nok.Open(*db, nil)
		if err != nil {
			fmt.Fprintf(stderr, "nokserve: %v\n", err)
			return 1
		}
		if rec := sst.Recovery(); rec.Recovered() {
			fmt.Fprintf(stdout, "nokserve: recovered store at open: journal_replayed=%v journal_discarded=%v truncated=%d orphans_removed=%d\n",
				rec.JournalReplayed, rec.JournalDiscarded, len(rec.TruncatedFiles), len(rec.OrphansRemoved))
		}
		st = sst
	}
	if *slowLog != "" {
		var w io.Writer
		if *slowLog == "stderr" {
			w = stderr
		} else {
			f, err := os.OpenFile(*slowLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fmt.Fprintf(stderr, "nokserve: slow log: %v\n", err)
				return 1
			}
			defer f.Close()
			w = f
		}
		telemetry.Default.SetSlowLog(w, *slowThreshold, *slowInterval)
	}
	deadline := *timeout
	if *queryTimeout > 0 && *queryTimeout < deadline {
		deadline = *queryTimeout
	}
	srv := server.NewBackend(st, server.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cache,
		QueryTimeout: deadline,
		EnablePprof:  *debug,
		AllowPartial: *allowPartial,
		Ingest: ingest.Options{
			BatchDocs:     *batchDocs,
			BatchBytes:    *batchBytes,
			BatchInterval: *batchInterval,
			MaxPending:    *ingestPending,
		},
	})

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(stdout, "nokserve: serving %s on %s (%d nodes%s)\n", *db, *addr, st.NodeCount(), topology)

	select {
	case <-ctx.Done():
		// Graceful shutdown: stop accepting, let in-flight requests finish,
		// then drain the query service and close the store.
		fmt.Fprintln(stdout, "nokserve: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			fmt.Fprintf(stderr, "nokserve: http shutdown: %v\n", err)
		}
		if err := srv.Shutdown(shutCtx); err != nil {
			fmt.Fprintf(stderr, "nokserve: drain: %v\n", err)
			return 1
		}
		return 0
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(stderr, "nokserve: %v\n", err)
			return 1
		}
		return 0
	}
}
