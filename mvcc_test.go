package nok

// mvcc_test.go — the snapshot-isolation test harness for MVCC reads.
//
// The tentpole guarantees under test:
//
//   - a Snapshot pinned before a batch of mutations sees byte-identical
//     results to the pre-mutation store, no matter how many commits land
//     while it is held (snapshot isolation, proven against an oracle);
//   - readers and writers interleave freely — queries never block
//     mutations and vice versa — without races (-race) or torn reads;
//   - epoch garbage collection never reclaims a page a pinned snapshot
//     can still reach, and reclaims every unpinned superseded epoch.

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// renderResults serializes a result list so snapshots can be compared for
// byte identity: any drift in IDs, tags, value presence or value bytes
// changes the rendering.
func renderResults(rs []Result) string {
	var b strings.Builder
	for _, r := range rs {
		fmt.Fprintf(&b, "%s\x1f%s\x1f%v\x1f%s\x1e", r.ID, r.Tag, r.HasValue, r.Value)
	}
	return b.String()
}

// oracleQueries exercise the index-backed, scan, and value-predicate read
// paths that all must observe the pinned epoch.
var oracleQueries = []string{
	`//book`,
	`/lib/book/title`,
	`//book[price<100]`,
}

// snapshotExpectations evaluates the oracle queries single-threaded and
// records their renderings.
func snapshotExpectations(t *testing.T, q func(string) ([]Result, error)) map[string]string {
	t.Helper()
	want := make(map[string]string, len(oracleQueries))
	for _, expr := range oracleQueries {
		rs, err := q(expr)
		if err != nil {
			t.Fatalf("oracle %s: %v", expr, err)
		}
		want[expr] = renderResults(rs)
	}
	return want
}

// TestSnapshotIsolationOracle pins a snapshot, then runs concurrent
// writers against the store while readers hammer the pinned snapshot. The
// snapshot must keep returning results byte-identical to the single-
// threaded pre-mutation evaluation the whole time, and the live store
// must reflect every committed mutation afterwards — writers made
// progress, readers never saw any of it.
func TestSnapshotIsolationOracle(t *testing.T) {
	const books = 400
	st := bigStore(t, books)
	want := snapshotExpectations(t, st.Query)

	snap, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	epoch0 := snap.Epoch()

	const writers, opsPerWriter, readers = 4, 8, 4
	var (
		wg        sync.WaitGroup
		inserts   atomic.Int64
		deletes   atomic.Int64
		writeDone = make(chan struct{})
	)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWriter; i++ {
				if (w+i)%3 == 0 {
					if err := st.Delete("0.1"); err != nil {
						t.Errorf("writer %d delete: %v", w, err)
						return
					}
					deletes.Add(1)
				} else {
					frag := fmt.Sprintf("<book><title>w%d-%d</title><price>999</price></book>", w, i)
					if err := st.Insert("0", strings.NewReader(frag)); err != nil {
						t.Errorf("writer %d insert: %v", w, err)
						return
					}
					inserts.Add(1)
				}
			}
		}(w)
	}
	go func() { wg.Wait(); close(writeDone) }()

	check := func(where string) {
		for _, expr := range oracleQueries {
			rs, err := snap.Query(expr)
			if err != nil {
				t.Errorf("%s: snapshot %s: %v", where, expr, err)
				return
			}
			if got := renderResults(rs); got != want[expr] {
				t.Errorf("%s: snapshot %s drifted from pre-mutation results", where, expr)
				return
			}
		}
	}
	var rg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-writeDone:
					return
				default:
					check("during writes")
				}
			}
		}()
	}
	<-writeDone
	rg.Wait()
	check("after writes")

	if e := snap.Epoch(); e != epoch0 {
		t.Errorf("pinned snapshot changed epoch: %d -> %d", epoch0, e)
	}
	committed := inserts.Load() + deletes.Load()
	if committed != writers*opsPerWriter {
		t.Fatalf("writers did not make full progress: %d/%d mutations", committed, writers*opsPerWriter)
	}
	if e := st.Epoch(); e != epoch0+uint64(committed) {
		t.Errorf("live epoch = %d, want %d (+1 per committed mutation)", e, epoch0+uint64(committed))
	}
	rs, err := st.Query(`//book`)
	if err != nil {
		t.Fatal(err)
	}
	if wantBooks := int64(books) + inserts.Load() - deletes.Load(); int64(len(rs)) != wantBooks {
		t.Errorf("live store has %d books, want %d after %d inserts / %d deletes",
			len(rs), wantBooks, inserts.Load(), deletes.Load())
	}
	if vr := st.Verify(true); len(vr.Issues) != 0 {
		t.Errorf("deep verify after concurrent mutations: %v", vr.Issues)
	}
}

// TestInterleavedMutationStress races queries against a stream of
// interleaved inserts and deletes. Every read must observe some committed
// epoch in full: well-formed results in strict document order, tags
// intact, and a monotonically non-decreasing store epoch. Run under -race
// this is the harness proving readers take no locks writers hold.
func TestInterleavedMutationStress(t *testing.T) {
	const books = 200
	st := bigStore(t, books)

	const writers, opsPerWriter, readers = 2, 30, 4
	var (
		wg        sync.WaitGroup
		inserts   atomic.Int64
		deletes   atomic.Int64
		writeDone = make(chan struct{})
	)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWriter; i++ {
				if i%4 == 3 {
					if err := st.Delete("0.1"); err != nil {
						t.Errorf("delete: %v", err)
						return
					}
					deletes.Add(1)
				} else {
					frag := fmt.Sprintf("<book><title>s%d-%d</title><price>%d</price></book>", w, i, i)
					if err := st.Insert("0", strings.NewReader(frag)); err != nil {
						t.Errorf("insert: %v", err)
						return
					}
					inserts.Add(1)
				}
			}
		}(w)
	}
	go func() { wg.Wait(); close(writeDone) }()

	var rg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			var lastEpoch uint64
			for {
				select {
				case <-writeDone:
					return
				default:
				}
				if e := st.Epoch(); e < lastEpoch {
					t.Errorf("epoch went backwards: %d after %d", e, lastEpoch)
					return
				} else {
					lastEpoch = e
				}
				rs, err := st.Query(`//book`)
				if err != nil {
					t.Errorf("query during writes: %v", err)
					return
				}
				// A torn read would surface as a dangling ID, a wrong tag,
				// or out-of-order results; document order within one
				// snapshot means strictly increasing second components.
				prev := -1
				for _, r := range rs {
					if r.Tag != "book" {
						t.Errorf("result %s has tag %q", r.ID, r.Tag)
						return
					}
					var a, b int
					if n, _ := fmt.Sscanf(r.ID, "%d.%d", &a, &b); n != 2 || a != 0 {
						t.Errorf("malformed book ID %q", r.ID)
						return
					}
					if b <= prev {
						t.Errorf("IDs out of document order: %d after %d", b, prev)
						return
					}
					prev = b
				}
			}
		}()
	}
	<-writeDone
	rg.Wait()

	rs, err := st.Query(`//book`)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(books) + inserts.Load() - deletes.Load(); int64(len(rs)) != want {
		t.Errorf("final book count %d, want %d", len(rs), want)
	}
	if vr := st.Verify(true); len(vr.Issues) != 0 {
		t.Errorf("deep verify after stress: %v", vr.Issues)
	}
}

// TestEpochGCCorrectness pins a snapshot across a run of mutations and
// checks both halves of the reclamation contract: while the pin is held
// no page the snapshot reaches is recycled (its reads stay byte-
// identical, and the pager accounts every physical page as live or free —
// zero orphans); once released, every superseded epoch is destroyed,
// leaving exactly one live version and no orphaned pages.
func TestEpochGCCorrectness(t *testing.T) {
	st := bigStore(t, 100)
	want := snapshotExpectations(t, st.Query)

	info0 := st.MVCC()
	if info0.LiveVersions != 1 || info0.OrphanPages != 0 {
		t.Fatalf("fresh store MVCC state: %+v", info0)
	}

	snap, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	const mutations = 6
	for i := 0; i < mutations; i++ {
		if i%3 == 2 {
			if err := st.Delete("0.1"); err != nil {
				t.Fatal(err)
			}
		} else {
			frag := fmt.Sprintf("<book><title>gc%d</title><price>%d</price></book>", i, i)
			if err := st.Insert("0", strings.NewReader(frag)); err != nil {
				t.Fatal(err)
			}
		}
	}

	mid := st.MVCC()
	if mid.Epoch != info0.Epoch+mutations {
		t.Errorf("epoch = %d, want %d", mid.Epoch, info0.Epoch+mutations)
	}
	// The pinned version plus the current one must both be live; the
	// intermediate epochs (never pinned) are already reclaimed.
	if mid.LiveVersions != 2 {
		t.Errorf("LiveVersions = %d while one snapshot pinned, want 2", mid.LiveVersions)
	}
	// Two pins: the store's own standing pin on the current version, plus
	// ours on the old one.
	if mid.PinnedSnaps != 2 {
		t.Errorf("PinnedSnaps = %d while a snapshot is held, want 2", mid.PinnedSnaps)
	}
	if mid.OrphanPages != 0 {
		t.Errorf("OrphanPages = %d while pinned, want 0 (a reachable page was dropped from accounting)", mid.OrphanPages)
	}
	// No page the snapshot reaches was reclaimed: its reads are still
	// byte-identical to the pre-mutation store.
	for _, expr := range oracleQueries {
		rs, err := snap.Query(expr)
		if err != nil {
			t.Fatalf("pinned snapshot %s after %d commits: %v", expr, mutations, err)
		}
		if renderResults(rs) != want[expr] {
			t.Fatalf("pinned snapshot %s drifted after %d commits", expr, mutations)
		}
	}

	snap.Release()

	end := st.MVCC()
	if end.LiveVersions != 1 {
		t.Errorf("LiveVersions = %d after unpin, want 1 (garbage epochs not reclaimed)", end.LiveVersions)
	}
	if end.PinnedSnaps != 1 {
		t.Errorf("PinnedSnaps = %d after unpin, want 1 (the store's own standing pin)", end.PinnedSnaps)
	}
	if end.OrphanPages != 0 {
		t.Errorf("OrphanPages = %d after unpin, want 0", end.OrphanPages)
	}
	if end.FreePhysical == 0 {
		t.Errorf("FreePhysical = 0 after releasing %d superseded epochs, want recycled pages", mutations)
	}
	if got := end.NumLogical + end.FreePhysical; got > end.NumPhysical {
		t.Errorf("page accounting: %d logical + %d free > %d physical", end.NumLogical, end.FreePhysical, end.NumPhysical)
	}
	if vr := st.Verify(true); len(vr.Issues) != 0 {
		t.Errorf("deep verify after GC: %v", vr.Issues)
	}

	// Releasing twice is a programming error upstream but must be inert
	// on the public wrapper.
	snap.Release()
}

// TestCloseRacesPinnedSnapshot closes the store while a reader holds a
// pinned snapshot mid-evaluation. The reader must run to completion with
// correct results — Close drains pins rather than yanking pages — and
// everything after Close fails with ErrClosed.
func TestCloseRacesPinnedSnapshot(t *testing.T) {
	st := bigStore(t, 300)
	want := snapshotExpectations(t, st.Query)

	snap, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	var released atomic.Bool
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for i := 0; i < 20; i++ {
			for _, expr := range oracleQueries {
				rs, err := snap.Query(expr)
				if err != nil {
					t.Errorf("pinned read during Close: %v", err)
					released.Store(true)
					snap.Release()
					return
				}
				if renderResults(rs) != want[expr] {
					t.Errorf("torn read during Close: %s", expr)
				}
			}
		}
		released.Store(true)
		snap.Release()
	}()

	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !released.Load() {
		t.Fatal("Close returned while a snapshot was still pinned")
	}
	<-readerDone

	if _, err := st.Snapshot(); !errors.Is(err, ErrClosed) {
		t.Errorf("Snapshot after Close: err = %v, want ErrClosed", err)
	}
	if _, err := snap.Query(`//book`); !errors.Is(err, ErrClosed) {
		t.Errorf("query on released snapshot: err = %v, want ErrClosed", err)
	}
}

// TestSnapshotPinnedAcrossBatchedCommits extends the harness to the
// group-commit append path: a snapshot pinned before a stream of batched
// appends must stay byte-identical while InsertBatch publishes whole
// batches — one epoch per batch, not per document — and once the snapshot
// is released, every superseded batch epoch is reclaimed.
func TestSnapshotPinnedAcrossBatchedCommits(t *testing.T) {
	const books = 100
	st := bigStore(t, books)
	want := snapshotExpectations(t, st.Query)
	epoch0 := st.Epoch()

	snap, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	const batches, perBatch = 5, 12
	for b := 0; b < batches; b++ {
		frags := make([][]byte, perBatch)
		for i := range frags {
			frags[i] = []byte(fmt.Sprintf(
				"<book><title>batch%d-%d</title><price>%d</price></book>", b, i, 200+i))
		}
		if err := st.InsertBatch("0", frags); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		// After every group commit the pinned view is unchanged.
		for _, expr := range oracleQueries {
			rs, err := snap.Query(expr)
			if err != nil {
				t.Fatalf("pinned snapshot %s after batch %d: %v", expr, b, err)
			}
			if renderResults(rs) != want[expr] {
				t.Fatalf("pinned snapshot %s drifted after batch %d", expr, b)
			}
		}
	}

	// Group commit: one epoch per batch, never one per document.
	if e := st.Epoch(); e != epoch0+batches {
		t.Errorf("epoch = %d after %d batches, want %d (one epoch per batch)", e, batches, epoch0+batches)
	}
	mid := st.MVCC()
	if mid.LiveVersions != 2 || mid.OrphanPages != 0 {
		t.Errorf("MVCC state while pinned: %+v, want 2 live versions, 0 orphans", mid)
	}

	snap.Release()

	end := st.MVCC()
	if end.LiveVersions != 1 {
		t.Errorf("LiveVersions = %d after unpin, want 1 (superseded batch epochs not reclaimed)", end.LiveVersions)
	}
	if end.FreePhysical == 0 {
		t.Errorf("FreePhysical = 0 after releasing %d superseded batch epochs, want recycled pages", batches)
	}
	rs, err := st.Query(`//book`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != books+batches*perBatch {
		t.Errorf("live store has %d books, want %d", len(rs), books+batches*perBatch)
	}
	if vr := st.Verify(true); len(vr.Issues) != 0 {
		t.Errorf("deep verify after batched commits: %v", vr.Issues)
	}
}
