module nok

go 1.24
