// Package nok is a native XML store with succinct physical storage and
// next-of-kin (NoK) path-query evaluation, reproducing
//
//	N. Zhang, V. Kacholia, M. T. Özsu.
//	"A Succinct Physical Storage Scheme for Efficient Evaluation of Path
//	Queries in XML." ICDE 2004.
//
// A Store persists an XML document as:
//
//   - a paged *string representation* of the element structure — one
//     2-byte symbol per start tag, one byte per end tag, with per-page
//     (st, lo, hi) level summaries that let navigation skip pages;
//   - an out-of-line value data file;
//   - three B+ trees (tag-name, hashed-value, and Dewey-ID indexes).
//
// Path queries (a practical XPath fragment: '/', '//', '*', '@attr',
// predicates with value comparisons, following-sibling) are evaluated by
// NoK pattern matching: the query's pattern tree is partitioned into
// next-of-kin subtrees connected by global axes; each NoK subtree is
// matched navigationally in a single pass over the relevant pages, and the
// partial results are recombined with interval-based structural joins.
//
// Quick start:
//
//	st, err := nok.CreateFromFile("bib.db", "bib.xml", nil)
//	...
//	results, err := st.Query(`//book[author/last="Stevens"][price<100]`)
//	for _, r := range results {
//		fmt.Println(r.ID, r.Tag, r.Value)
//	}
//
// The package also exposes streaming evaluation (Stream) that runs the
// same query language over any XML io.Reader in one pass with bounded
// memory — the string representation is exactly a SAX event stream, so
// the matcher does not care whether pages come from disk or from a socket.
package nok

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"

	"nok/internal/core"
	"nok/internal/dewey"
	"nok/internal/obs"
	"nok/internal/pattern"
	"nok/internal/stream"
)

// Options configure store creation and opening.
type Options struct {
	// PageSize is the page size in bytes for the string tree and index
	// files (default 4096, the paper's running example).
	PageSize int
	// PoolPages is the buffer-pool capacity per file (default 256).
	PoolPages int
	// ReservePct is the per-page free-space reserve for future updates
	// (default 20, as in §4.2's example).
	ReservePct int
}

func (o *Options) toCore() *core.Options {
	if o == nil {
		return nil
	}
	return &core.Options{PageSize: o.PageSize, PoolPages: o.PoolPages, ReservePct: o.ReservePct}
}

// Strategy selects how NoK starting points are located; see §3 and §6.2
// of the paper.
type Strategy = core.Strategy

// Starting-point strategies.
const (
	// StrategyAuto applies the paper's heuristic: value index when an
	// equality constraint exists, otherwise tag index when selective
	// enough, otherwise a sequential scan.
	StrategyAuto = core.StrategyAuto
	// StrategyScan always scans the document in order.
	StrategyScan = core.StrategyScan
	// StrategyTagIndex drives starting points from the tag-name B+ tree.
	StrategyTagIndex = core.StrategyTagIndex
	// StrategyValueIndex drives starting points from the value B+ tree.
	StrategyValueIndex = core.StrategyValueIndex
	// StrategyPathIndex drives starting points from the path index (the
	// paper's §8 extension); outside concrete '/'-rooted chains it
	// degrades to StrategyAuto.
	StrategyPathIndex = core.StrategyPathIndex
	// StrategySkipped is never requested: QueryStats.StrategyUsed records
	// it for partitions whose matching was short-circuited because a
	// linked child partition was empty.
	StrategySkipped = core.StrategySkipped
)

// QueryOptions tune one query evaluation.
type QueryOptions struct {
	// Strategy forces a starting-point strategy (default StrategyAuto,
	// which consults the cost-based planner when the store has a fresh
	// statistics synopsis and otherwise applies the paper's §6.2
	// heuristic).
	Strategy Strategy
	// DisablePageSkip turns off the (st,lo,hi) header-driven page skipping
	// during navigation — an ablation switch for measuring its benefit.
	DisablePageSkip bool
	// DisablePlanner keeps StrategyAuto on the paper's heuristic even when
	// planner statistics exist — an ablation switch and an escape hatch.
	DisablePlanner bool
	// DisableParallel forces the bottom-up phase onto one goroutine even
	// when the planner judges the query worth running NoK partitions
	// concurrently — an ablation switch and an escape hatch.
	DisableParallel bool
	// AllowPartial opts a scatter-gather query into degraded partial
	// results: when a remote shard is unavailable, the merged answer from
	// the reachable shards is returned with QueryStats.Degraded set and
	// the missing shards listed, instead of failing with
	// ErrShardUnavailable. Results that do come back are always correct
	// matches — a degraded answer can only be missing rows, never contain
	// wrong ones. Ignored by single-store evaluation.
	AllowPartial bool
}

func (o *QueryOptions) toCore() *core.QueryOptions {
	if o == nil {
		return nil
	}
	return &core.QueryOptions{
		Strategy:        o.Strategy,
		DisablePageSkip: o.DisablePageSkip,
		DisablePlanner:  o.DisablePlanner,
		DisableParallel: o.DisableParallel,
	}
}

// Result is one query match.
type Result struct {
	// ID is the node's Dewey identifier in dotted form; the document root
	// is "0" and its second child "0.2".
	ID string
	// Tag is the element name ("@name" for attributes).
	Tag string
	// Value is the node's text content; HasValue distinguishes an empty
	// value from no value.
	Value    string
	HasValue bool
}

// QueryStats mirrors the evaluation counters of one query (see the
// core package for field semantics).
type QueryStats = core.QueryStats

// Store is an opened NoK database directory.
//
// A Store is safe for concurrent use, and reads never block on writes:
// every query pins the committed MVCC snapshot current at its start and
// evaluates against that immutable state while Insert and Delete build
// the next epoch off to the side (copy-on-write pages, fresh index
// files) and publish it atomically. Mutations serialize against each
// other; superseded snapshots are garbage-collected when their last
// reader releases them.
type Store struct {
	// mu serializes administrative operations (Insert, Delete, Verify,
	// RefreshStats, Close) at the Store level. Queries do not take it —
	// they pin a snapshot instead.
	mu sync.RWMutex
	db *core.DB

	// closed flips under mu in Close; core's own close then drains
	// in-flight snapshot readers before releasing the pager.
	closed bool

	// gen counts mutations (Insert/Delete). It predates epochs and is kept
	// for compatibility; prefer Epoch, which only advances on *committed*
	// mutations (see internal/server's result cache).
	gen atomic.Uint64
}

// ErrClosed is returned by Store methods called after Close.
var ErrClosed = errors.New("nok: store is closed")

// mapClosed translates core's closed error into the package's own.
func mapClosed(err error) error {
	if errors.Is(err, core.ErrClosed) {
		return ErrClosed
	}
	return err
}

// acquire pins the current committed snapshot.
func (s *Store) acquire() (*core.Snapshot, error) {
	v, err := s.db.Acquire()
	if err != nil {
		return nil, mapClosed(err)
	}
	return v, nil
}

// Create builds a new store at dir from an XML document.
func Create(dir string, xml io.Reader, opts *Options) (*Store, error) {
	db, err := core.LoadXML(dir, xml, opts.toCore())
	if err != nil {
		return nil, err
	}
	return &Store{db: db}, nil
}

// CreateFromFile builds a new store at dir from an XML file.
func CreateFromFile(dir, xmlPath string, opts *Options) (*Store, error) {
	f, err := os.Open(xmlPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Create(dir, f, opts)
}

// Open attaches to an existing store directory.
func Open(dir string, opts *Options) (*Store, error) {
	db, err := core.Open(dir, opts.toCore())
	if err != nil {
		return nil, err
	}
	return &Store{db: db}, nil
}

// Close releases the store. It blocks until in-flight queries drain: each
// holds a reference on its pinned snapshot, and core's close waits for the
// last reference before releasing the pager. Calls racing Close either
// finish normally on their pinned snapshot or fail with ErrClosed — never
// a torn read. Closing twice is a no-op.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.db.Close()
}

// NodeCount returns the number of element nodes (attributes are modeled
// as child nodes and included).
func (s *Store) NodeCount() uint64 {
	v, err := s.acquire()
	if err != nil {
		return 0
	}
	defer v.Release()
	return v.NodeCount()
}

// Generation returns the store's mutation counter: it starts at 0 and is
// bumped by every Insert and Delete. Cache query results keyed on
// (expression, Generation) and a mutation invalidates them wholesale.
func (s *Store) Generation() uint64 { return s.gen.Load() }

// Query evaluates a path expression and returns matches in document order.
func (s *Store) Query(expr string) ([]Result, error) {
	rs, _, err := s.QueryWithOptions(expr, nil)
	return rs, err
}

// QueryContext is Query with a context: evaluation stops at the next
// cancellation checkpoint once ctx is cancelled or its deadline passes,
// returning ctx.Err().
func (s *Store) QueryContext(ctx context.Context, expr string) ([]Result, error) {
	rs, _, err := s.QueryWithOptionsContext(ctx, expr, nil)
	return rs, err
}

// QueryWithOptions evaluates a path expression with explicit options and
// returns evaluation statistics alongside the results.
func (s *Store) QueryWithOptions(expr string, opts *QueryOptions) ([]Result, *QueryStats, error) {
	return s.QueryWithOptionsContext(context.Background(), expr, opts)
}

// QueryWithOptionsContext is QueryWithOptions with a context threaded down
// into the matching loops: a long evaluation notices cancellation within a
// few dozen subject-node visits and aborts with ctx.Err().
func (s *Store) QueryWithOptionsContext(ctx context.Context, expr string, opts *QueryOptions) ([]Result, *QueryStats, error) {
	v, err := s.acquire()
	if err != nil {
		return nil, nil, err
	}
	defer v.Release()
	return queryOn(v, ctx, expr, opts, nil)
}

// queryOn evaluates expr against one pinned snapshot and resolves the
// matches on that same snapshot, so a concurrent commit can never mix
// epochs within one result set.
func queryOn(v *core.Snapshot, ctx context.Context, expr string, opts *QueryOptions, tr *obs.Trace) ([]Result, *QueryStats, error) {
	co := opts.toCore()
	if co == nil {
		co = &core.QueryOptions{}
	}
	co.Ctx = ctx
	co.Trace = tr
	ms, stats, err := v.Query(expr, co)
	if err != nil {
		return nil, nil, mapClosed(err)
	}
	return buildResults(v, ms), stats, nil
}

// buildResults resolves matches to Results against the snapshot that
// produced them.
func buildResults(v *core.Snapshot, ms []core.Match) []Result {
	out := make([]Result, len(ms))
	for i, m := range ms {
		r := Result{ID: m.ID.String()}
		if sym, err := v.Tree.SymAt(m.Pos); err == nil {
			if name, ok := v.Tags.Name(sym); ok {
				r.Tag = name
			}
		}
		if val, ok, err := v.NodeValue(m.ID); err == nil && ok {
			r.Value, r.HasValue = val, true
		}
		out[i] = r
	}
	return out
}

// QueryAnalyze evaluates a path expression with tracing enabled and returns,
// alongside the results and statistics, the executed plan rendered as an
// indented phase tree with per-phase timings and counters — the library form
// of EXPLAIN ANALYZE.
func (s *Store) QueryAnalyze(expr string, opts *QueryOptions) ([]Result, *QueryStats, string, error) {
	v, err := s.acquire()
	if err != nil {
		return nil, nil, "", err
	}
	defer v.Release()
	tr := obs.New("query " + expr)
	rs, stats, err := queryOn(v, context.Background(), expr, opts, tr)
	tr.Finish()
	if err != nil {
		return nil, nil, "", err
	}
	root := tr.Root()
	root.Set("results", len(rs))
	root.Set("pages-scanned", stats.PagesScanned)
	root.Set("pages-skipped", stats.PagesSkipped)
	return rs, stats, tr.String(), nil
}

// ExplainAnalyze executes a query against the store and returns the executed
// plan: each evaluation phase (parse, partition, starting-point lookup, NoK
// matching per partition, structural joins) with its duration, the strategy
// chosen, and page-level I/O counters. The query's results are discarded;
// use QueryAnalyze to get both.
func ExplainAnalyze(st *Store, expr string) (string, error) {
	_, _, plan, err := st.QueryAnalyze(expr, nil)
	return plan, err
}

// Plan renders the cost-based plan for a query without executing it (the
// EXPLAIN to QueryAnalyze's EXPLAIN ANALYZE): per-partition access paths
// with estimated starting points, matches and pages, and the bottom-up
// evaluation order. When the planner cannot run — the store predates the
// statistics synopsis, or the synopsis is stale — the rendering says so
// and names the fallback.
func (s *Store) Plan(expr string) (string, error) {
	v, err := s.acquire()
	if err != nil {
		return "", err
	}
	defer v.Release()
	return v.PlanText(expr)
}

// ProvablyEmpty reports whether statistics alone prove the query returns
// nothing from this store: a concrete tag test naming a tag the store has
// zero of, or (with a fresh synopsis) a non-numeric equality literal whose
// count-min estimate is zero. The reason string names the proof. The
// sharded executor (internal/shard) uses this to skip shards without
// touching their pages.
func (s *Store) ProvablyEmpty(expr string) (bool, string, error) {
	t, err := pattern.Parse(expr)
	if err != nil {
		return false, "", err
	}
	v, err := s.acquire()
	if err != nil {
		return false, "", err
	}
	defer v.Release()
	empty, reason := v.ProvablyEmpty(t)
	return empty, reason, nil
}

// SynopsisInfo summarizes the store's statistics synopsis (the planner's
// input): totals, staleness, and the top-n tags and root-to-node paths by
// cardinality. See internal/core for field semantics.
type SynopsisInfo = core.SynopsisInfo

// Synopsis reports the statistics synopsis with the top-n tags and paths.
func (s *Store) Synopsis(n int) SynopsisInfo {
	v, err := s.acquire()
	if err != nil {
		return SynopsisInfo{}
	}
	defer v.Release()
	return v.SynopsisInfo(n)
}

// RefreshStats rebuilds the statistics synopsis from the committed store
// and commits it at the current epoch — the upgrade path for stores
// created before the synopsis existed (updates refresh it automatically).
func (s *Store) RefreshStats() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return mapClosed(s.db.RefreshSynopsis())
}

// MetricsText renders the process-wide metrics registry (pager I/O, B+-tree
// and value-store operations, structural-join and query counters) in
// Prometheus text exposition format.
func MetricsText() string {
	var b strings.Builder
	obs.Default.WritePrometheus(&b)
	return b.String()
}

// MetricsJSON renders the process-wide metrics registry as a JSON object
// keyed by metric name.
func MetricsJSON() string {
	var b strings.Builder
	obs.Default.WriteJSON(&b)
	return b.String()
}

// Value returns the text content of the node with the given Dewey ID.
func (s *Store) Value(id string) (string, bool, error) {
	did, err := dewey.Parse(id)
	if err != nil {
		return "", false, err
	}
	v, err := s.acquire()
	if err != nil {
		return "", false, err
	}
	defer v.Release()
	return v.NodeValue(did)
}

// Insert appends an XML fragment (one root element) as the last child of
// the node identified by parentID. Indexes are rebuilt; see the paper's
// §4.1 note on Dewey-ID index reconstruction.
func (s *Store) Insert(parentID string, fragment io.Reader) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	id, err := dewey.Parse(parentID)
	if err != nil {
		return err
	}
	// Bump even when the insert errors: a partial mutation may have touched
	// pages, and over-invalidating caches is always safe.
	s.gen.Add(1)
	return mapClosed(s.db.InsertFragment(id, fragment))
}

// FragmentError reports which fragment of an InsertBatch failed; callers
// can drop the offender (by Index) and retry the rest of the batch.
type FragmentError = core.FragmentError

// InsertBatch appends every fragment, in order, as new last children of
// the node with the given parent ID — one atomic commit publishing ONE new
// epoch, with the per-commit fsync/rename cost paid once for the whole
// batch (group commit). Each fragment must contain exactly one root
// element; a malformed fragment aborts the batch before any mutation and
// is reported as a *FragmentError. The statistics synopsis is maintained
// incrementally, so the planner stays on fresh statistics throughout a
// sustained append stream.
func (s *Store) InsertBatch(parentID string, fragments [][]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	id, err := dewey.Parse(parentID)
	if err != nil {
		return err
	}
	if len(fragments) == 0 {
		return nil
	}
	readers := make([]io.Reader, len(fragments))
	for i, f := range fragments {
		readers[i] = bytes.NewReader(f)
	}
	// Bump even when the insert errors: a partial mutation may have touched
	// pages, and over-invalidating caches is always safe.
	s.gen.Add(1)
	return mapClosed(s.db.InsertFragmentBatch(id, readers))
}

// Delete removes the node with the given Dewey ID and its whole subtree.
// Following siblings are renumbered.
func (s *Store) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	did, err := dewey.Parse(id)
	if err != nil {
		return err
	}
	s.gen.Add(1)
	return mapClosed(s.db.DeleteSubtree(did))
}

// Stats summarizes the store's physical layout.
type Stats struct {
	Nodes       uint64
	Pages       int
	MaxDepth    int
	TreeBytes   uint64 // size of the string representation
	ValueBytes  int64  // size of the value data file
	HeaderBytes int    // in-RAM page-header table (§4.2)
}

// Stats returns the store's layout summary.
func (s *Store) Stats() Stats {
	v, err := s.acquire()
	if err != nil {
		return Stats{}
	}
	defer v.Release()
	return Stats{
		Nodes:       v.Tree.NodeCount(),
		Pages:       v.Tree.NumPages(),
		MaxDepth:    v.Tree.MaxLevel(),
		TreeBytes:   v.Tree.TokenBytes(),
		ValueBytes:  v.Values.Size(),
		HeaderBytes: v.Tree.HeaderBytes(),
	}
}

// TagCount returns how many nodes carry the given tag name.
func (s *Store) TagCount(name string) uint64 {
	v, err := s.acquire()
	if err != nil {
		return 0
	}
	defer v.Release()
	return v.TagCount(name)
}

// ErrShardUnavailable is returned (wrapped) by scatter-gather queries that
// needed an unreachable shard and were not allowed to return partial
// results (QueryOptions.AllowPartial). The server maps it to HTTP 503.
var ErrShardUnavailable = core.ErrShardUnavailable

// ShardHealth reports one shard's availability as seen by the
// scatter-gather executor; see internal/core for field semantics.
type ShardHealth = core.ShardHealth

// ErrNeedsRecovery is returned by Insert/Delete after an update
// transaction failed midway: the in-memory state is unreliable and further
// mutations are refused. Queries still serve the (still-consistent) cached
// state; close and reopen the store to roll back to the last commit.
var ErrNeedsRecovery = core.ErrNeedsRecovery

// RecoveryInfo reports what Open had to repair to bring the store back to
// its last committed state (see internal/core).
type RecoveryInfo = core.RecoveryInfo

// Recovery reports what Open repaired. All-zero means the store was
// cleanly committed.
func (s *Store) Recovery() RecoveryInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db.Recovery()
}

// Epoch returns the store's committed epoch: 1 after the initial load,
// bumped by every committed Insert/Delete. Two reads of the same epoch are
// guaranteed to observe identical store state, which makes the epoch the
// correct result-cache key (unlike Generation, which also counts failed
// mutations).
func (s *Store) Epoch() uint64 {
	v, err := s.acquire()
	if err != nil {
		return 0
	}
	defer v.Release()
	return v.Epoch()
}

// MVCCInfo reports the multi-version machinery's state: committed epoch,
// live page-table versions, reader pins, and the physical-page accounting
// of the copy-on-write tree file. See internal/core for field semantics.
type MVCCInfo = core.MVCCInfo

// MVCC summarizes the store's snapshot and page-version state.
func (s *Store) MVCC() MVCCInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return MVCCInfo{}
	}
	return s.db.MVCCInfo()
}

// Snapshot is a pinned, immutable view of the store at one committed
// epoch: every read through it observes exactly that state no matter how
// many mutations commit concurrently. Release it when done — a held
// snapshot keeps its epoch's pages and files alive (and its disk space
// unreclaimed).
type Snapshot struct {
	v        *core.Snapshot
	released atomic.Bool
}

// Snapshot pins the store's current committed state. The caller must
// Release it.
func (s *Store) Snapshot() (*Snapshot, error) {
	v, err := s.acquire()
	if err != nil {
		return nil, err
	}
	return &Snapshot{v: v}, nil
}

// Release unpins the snapshot; the last release of a superseded epoch
// garbage-collects its files. Releasing twice is a no-op.
func (sn *Snapshot) Release() {
	if !sn.released.Swap(true) {
		sn.v.Release()
	}
}

// Epoch returns the committed epoch this snapshot observes.
func (sn *Snapshot) Epoch() uint64 { return sn.v.Epoch() }

// NodeCount returns the snapshot's element-node count.
func (sn *Snapshot) NodeCount() uint64 {
	if sn.released.Load() {
		return 0
	}
	return sn.v.NodeCount()
}

// Query evaluates a path expression against the pinned state.
func (sn *Snapshot) Query(expr string) ([]Result, error) {
	rs, _, err := sn.QueryWithOptionsContext(context.Background(), expr, nil)
	return rs, err
}

// QueryWithOptionsContext evaluates a path expression against the pinned
// state with explicit options and a context.
func (sn *Snapshot) QueryWithOptionsContext(ctx context.Context, expr string, opts *QueryOptions) ([]Result, *QueryStats, error) {
	if sn.released.Load() {
		return nil, nil, ErrClosed
	}
	return queryOn(sn.v, ctx, expr, opts, nil)
}

// ProvablyEmpty reports whether statistics alone prove the query returns
// nothing from the pinned state; see Store.ProvablyEmpty. The sharded
// executor prunes and evaluates on the same pinned snapshot so the two
// decisions can never observe different epochs.
func (sn *Snapshot) ProvablyEmpty(expr string) (bool, string, error) {
	t, err := pattern.Parse(expr)
	if err != nil {
		return false, "", err
	}
	if sn.released.Load() {
		return false, "", ErrClosed
	}
	empty, reason := sn.v.ProvablyEmpty(t)
	return empty, reason, nil
}

// Value returns the text content of the node with the given Dewey ID in
// the pinned state.
func (sn *Snapshot) Value(id string) (string, bool, error) {
	did, err := dewey.Parse(id)
	if err != nil {
		return "", false, err
	}
	if sn.released.Load() {
		return "", false, ErrClosed
	}
	return sn.v.NodeValue(did)
}

// VerifyResult summarizes a Verify run; see internal/core for field
// semantics.
type VerifyResult = core.VerifyResult

// VerifyIssue is one problem Verify found.
type VerifyIssue = core.VerifyIssue

// Verify checks the store's integrity. The quick form (deep=false) checks
// the commit manifest and cross-component counts; deep additionally
// validates every page checksum, the balanced-parenthesis structure, all
// B+ tree leaf chains, every value record, and resolves every Dewey-index
// entry. Verify takes the store's read lock: queries proceed, mutations
// wait.
func (s *Store) Verify(deep bool) *VerifyResult {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return &VerifyResult{Deep: deep, Issues: []VerifyIssue{{Component: "store", Err: ErrClosed}}}
	}
	return s.db.Verify(deep)
}

// ErrStreamUnsupported is returned by Stream for patterns that cannot be
// evaluated in one pass with bounded memory (the following axis).
var ErrStreamUnsupported = stream.ErrUnsupported

// Stream evaluates a path expression over streaming XML in a single pass,
// without building a store — the §4.2 observation that the storage format
// *is* the SAX stream, made operational. Matches are delivered to emit as
// soon as their candidate subtree closes; returning false stops early.
func Stream(xml io.Reader, expr string, emit func(Result) bool) error {
	t, err := pattern.Parse(expr)
	if err != nil {
		return err
	}
	_, err = stream.MatchFunc(xml, t, func(r stream.Result) bool {
		return emit(Result{ID: r.ID.String(), Value: r.Value, HasValue: r.Value != ""})
	})
	return err
}

// StreamAll collects every streaming match (sorted, deduplicated).
func StreamAll(xml io.Reader, expr string) ([]Result, error) {
	t, err := pattern.Parse(expr)
	if err != nil {
		return nil, err
	}
	rs, _, err := stream.Match(xml, t)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(rs))
	for i, r := range rs {
		out[i] = Result{ID: r.ID.String(), Value: r.Value, HasValue: r.Value != ""}
	}
	return out, nil
}

// ParseQuery validates a path expression without evaluating it, returning
// a descriptive error for malformed input.
func ParseQuery(expr string) error {
	_, err := pattern.Parse(expr)
	return err
}

// Explain reports how a query would be partitioned and evaluated: the
// pattern tree, its NoK partitions, and the local/global axis counts —
// useful for understanding why a query is fast or slow.
func Explain(expr string) (string, error) {
	t, err := pattern.Parse(expr)
	if err != nil {
		return "", err
	}
	parts := pattern.Partition(t)
	local, global := pattern.CountAxes(t)
	out := fmt.Sprintf("pattern: %s\naxes: %d local, %d global\npartitions: %d\n",
		t.String(), local, global, len(parts))
	for _, p := range parts {
		out += "  " + p.String() + "\n"
	}
	return out, nil
}
